//! Textual disassembly of KIR programs.
//!
//! The output is a stable, line-oriented format that [`crate::asm`] parses
//! back; property tests assert the round trip. It is also the main
//! debugging aid when developing module programs.

use std::fmt::Write as _;

use crate::isa::{Inst, Operand};
use crate::program::{Function, Program};

/// Disassembles a whole program.
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    writeln!(out, "program {}", p.name).unwrap();
    for imp in &p.imports {
        let kind = match imp.kind {
            crate::program::ImportKind::Func => "func",
            crate::program::ImportKind::Data => "data",
        };
        writeln!(out, "import {kind} {}", imp.name).unwrap();
    }
    for g in &p.globals {
        let rw = if g.writable { "rw" } else { "ro" };
        match &g.init {
            None => writeln!(out, "global {} size={} {}", g.name, g.size, rw).unwrap(),
            Some(bytes) => {
                let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
                writeln!(out, "global {} size={} {} init={}", g.name, g.size, rw, hex).unwrap()
            }
        }
    }
    for s in &p.sigs {
        writeln!(out, "sig {} params={}", s.name, s.params).unwrap();
    }
    for r in &p.fn_relocs {
        writeln!(
            out,
            "reloc @{}+{} &{}",
            p.globals[r.global.0 as usize].name, r.offset, p.funcs[r.func.0 as usize].name
        )
        .unwrap();
    }
    for a in &p.sig_assignments {
        writeln!(
            out,
            "assign {} {}",
            p.funcs[a.func.0 as usize].name, p.sigs[a.sig.0 as usize].name
        )
        .unwrap();
    }
    for f in &p.funcs {
        out.push('\n');
        disassemble_function(&mut out, p, f);
    }
    out
}

/// Disassembles one function into `out`.
pub fn disassemble_function(out: &mut String, p: &Program, f: &Function) {
    writeln!(
        out,
        "func {}(params={}, frame={}):",
        f.name, f.params, f.frame_size
    )
    .unwrap();
    for (i, inst) in f.insts.iter().enumerate() {
        writeln!(out, "  {i}: {}", inst_to_string(p, inst)).unwrap();
    }
}

fn args_to_string(args: &[Operand]) -> String {
    args.iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn ret_suffix(ret: &Option<crate::isa::Reg>) -> String {
    match ret {
        Some(r) => format!(" -> {r}"),
        None => String::new(),
    }
}

/// Renders one instruction (context needed to resolve names).
pub fn inst_to_string(p: &Program, inst: &Inst) -> String {
    match inst {
        Inst::Mov { dst, src } => format!("mov {dst}, {src}"),
        Inst::Bin { op, dst, lhs, rhs } => format!("{op} {dst}, {lhs}, {rhs}"),
        Inst::Load {
            dst,
            base,
            off,
            width,
        } => format!("load.{width} {dst}, [{base}{off:+}]"),
        Inst::Store {
            src,
            base,
            off,
            width,
        } => format!("store.{width} [{base}{off:+}], {src}"),
        Inst::LoadFrame { dst, off, width } => format!("loadf.{width} {dst}, [sp+{off}]"),
        Inst::StoreFrame { src, off, width } => format!("storef.{width} [sp+{off}], {src}"),
        Inst::FrameAddr { dst, off } => format!("frameaddr {dst}, sp+{off}"),
        Inst::GlobalAddr { dst, global } => {
            format!("globaladdr {dst}, @{}", p.globals[global.0 as usize].name)
        }
        Inst::SymAddr { dst, sym } => {
            format!("symaddr {dst}, ${}", p.imports[sym.0 as usize].name)
        }
        Inst::FuncAddr { dst, func } => {
            format!("funcaddr {dst}, &{}", p.funcs[func.0 as usize].name)
        }
        Inst::Jmp { target } => format!("jmp -> {target}"),
        Inst::Br {
            cond,
            lhs,
            rhs,
            target,
        } => format!("br.{cond} {lhs}, {rhs} -> {target}"),
        Inst::CallLocal { func, args, ret } => format!(
            "call {}({}){}",
            p.funcs[func.0 as usize].name,
            args_to_string(args),
            ret_suffix(ret)
        ),
        Inst::CallExtern { sym, args, ret } => format!(
            "ecall {}({}){}",
            p.imports[sym.0 as usize].name,
            args_to_string(args),
            ret_suffix(ret)
        ),
        Inst::CallPtr {
            ptr,
            sig,
            args,
            ret,
        } => format!(
            "icall {ptr}:{}({}){}",
            p.sigs[sig.0 as usize].name,
            args_to_string(args),
            ret_suffix(ret)
        ),
        Inst::Ret { val: Some(v) } => format!("ret {v}"),
        Inst::Ret { val: None } => "ret".to_string(),
        Inst::Trap { code } => format!("trap {code}"),
        Inst::Nop => "nop".to_string(),
        Inst::GuardWrite { base, off, len } => {
            format!("guard_write [{base}{off:+}], {len}")
        }
        Inst::GuardIndCall {
            slot_base,
            slot_off,
            sig,
        } => format!(
            "guard_indcall [{slot_base}{slot_off:+}]: {}",
            p.sigs[sig.0 as usize].name
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::regs::*;
    use crate::builder::ProgramBuilder;
    use crate::isa::{Cond, Width};

    #[test]
    fn renders_core_instructions() {
        let mut pb = ProgramBuilder::new("demo");
        let km = pb.import_func("kmalloc");
        let g = pb.global("tbl", 64);
        let sig = pb.sig("cb", 1);
        let f = pb.define("f", 1, 16, |f| {
            let out = f.label();
            f.mov(R1, -3i64);
            f.load(R2, R0, 8, Width::B4);
            f.store8(R2, R1, -16);
            f.global_addr(R3, g);
            f.call_extern(km, &[R0.into()], Some(R4));
            f.call_ptr(R4, sig, &[R2.into()], None);
            f.br(Cond::Ne, R2, 0i64, out);
            f.bind(out);
            f.ret_void();
        });
        pb.assign_sig(f, sig);
        let p = pb.finish();
        let text = disassemble(&p);
        assert!(text.contains("program demo"));
        assert!(text.contains("import func kmalloc"));
        assert!(text.contains("global tbl size=64 rw"));
        assert!(text.contains("sig cb params=1"));
        assert!(text.contains("assign f cb"));
        assert!(text.contains("mov r1, -3"));
        assert!(text.contains("load.4 r2, [r0+8]"));
        assert!(text.contains("store.8 [r1-16], r2"));
        assert!(text.contains("ecall kmalloc(r0) -> r4"));
        assert!(text.contains("icall r4:cb(r2)"));
        assert!(text.contains("br.ne r2, 0 -> 7"));
    }
}
