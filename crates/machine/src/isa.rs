//! Instruction set of the KIR register machine.
//!
//! Programs are flat instruction vectors per function; jump targets are
//! absolute instruction indices resolved by the [`crate::builder`]. Guard
//! instructions (`GuardWrite`, `GuardIndCall`) are never written by module
//! authors — only the LXFI rewriter emits them.

use crate::program::{FuncId, GlobalId, SigId, SymbolId};

/// A general-purpose register. Valid indices are `0..NUM_REGS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 16;

/// Number of registers used to pass arguments (`r0..r5`), mirroring the
/// System-V convention the paper's x86-64 target uses.
pub const NUM_ARG_REGS: usize = 6;

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An instruction operand: either a register or a signed immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register value.
    Reg(Reg),
    /// A signed 64-bit immediate (sign-extended into the 64-bit register).
    Imm(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Memory access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl Width {
    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }

    /// Truncates a word to this width.
    pub fn truncate(self, v: u64) -> u64 {
        match self {
            Width::B1 => v & 0xff,
            Width::B2 => v & 0xffff,
            Width::B4 => v & 0xffff_ffff,
            Width::B8 => v,
        }
    }
}

impl std::fmt::Display for Width {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.bytes())
    }
}

/// Binary ALU operations. Shifts mask the count to 0..64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; traps on zero divisor.
    Div,
    /// Unsigned remainder; traps on zero divisor.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Rotate left.
    Rotl,
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Rotl => "rotl",
        };
        f.write_str(s)
    }
}

/// Branch conditions. `Lt`..`Ge` are signed; `Ult`/`Ule` unsigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
}

impl Cond {
    /// Evaluates the condition on two words.
    #[inline(always)]
    pub fn eval(self, l: u64, r: u64) -> bool {
        match self {
            Cond::Eq => l == r,
            Cond::Ne => l != r,
            Cond::Lt => (l as i64) < (r as i64),
            Cond::Le => (l as i64) <= (r as i64),
            Cond::Gt => (l as i64) > (r as i64),
            Cond::Ge => (l as i64) >= (r as i64),
            Cond::Ult => l < r,
            Cond::Ule => l <= r,
        }
    }
}

impl std::fmt::Display for Cond {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
            Cond::Ult => "ult",
            Cond::Ule => "ule",
        };
        f.write_str(s)
    }
}

/// A KIR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register or immediate.
        src: Operand,
    },
    /// `dst = lhs op rhs`.
    Bin {
        /// Arithmetic/logic operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = zero_extend(mem[base + off], width)`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address.
        base: Operand,
        /// Constant byte offset added to `base`.
        off: i64,
        /// Access width.
        width: Width,
    },
    /// `mem[base + off] = truncate(src, width)`.
    Store {
        /// Value stored.
        src: Operand,
        /// Base address.
        base: Operand,
        /// Constant byte offset added to `base`.
        off: i64,
        /// Access width.
        width: Width,
    },
    /// `dst = mem[sp + off]` — frame-local load, statically bounds-checked.
    LoadFrame {
        /// Destination register.
        dst: Reg,
        /// Byte offset into the current frame.
        off: u32,
        /// Access width.
        width: Width,
    },
    /// `mem[sp + off] = src` — frame-local store, statically bounds-checked.
    StoreFrame {
        /// Value stored.
        src: Operand,
        /// Byte offset into the current frame.
        off: u32,
        /// Access width.
        width: Width,
    },
    /// `dst = sp + off` — materialize the address of a frame local.
    FrameAddr {
        /// Destination register.
        dst: Reg,
        /// Byte offset into the current frame.
        off: u32,
    },
    /// `dst = address of module global`.
    GlobalAddr {
        /// Destination register.
        dst: Reg,
        /// The global whose address is taken.
        global: GlobalId,
    },
    /// `dst = address of an imported kernel symbol` (data or function).
    SymAddr {
        /// Destination register.
        dst: Reg,
        /// The imported symbol whose address is taken.
        sym: SymbolId,
    },
    /// `dst = address of a module-local function`.
    FuncAddr {
        /// Destination register.
        dst: Reg,
        /// The function whose address is taken.
        func: FuncId,
    },
    /// Unconditional jump to an instruction index.
    Jmp {
        /// Absolute instruction index within the function.
        target: usize,
    },
    /// Conditional branch to an instruction index.
    Br {
        /// Branch condition.
        cond: Cond,
        /// Left comparison operand.
        lhs: Operand,
        /// Right comparison operand.
        rhs: Operand,
        /// Absolute instruction index taken when the condition holds.
        target: usize,
    },
    /// Direct call to a module-local function.
    CallLocal {
        /// Callee.
        func: FuncId,
        /// Argument values, one per callee parameter.
        args: Vec<Operand>,
        /// Register receiving the return value, if any.
        ret: Option<Reg>,
    },
    /// Call to an imported kernel symbol (through its LXFI wrapper when
    /// the module is isolated).
    CallExtern {
        /// Imported callee symbol.
        sym: SymbolId,
        /// Argument values, one per callee parameter.
        args: Vec<Operand>,
        /// Register receiving the return value, if any.
        ret: Option<Reg>,
    },
    /// Indirect call through a function pointer value, with the declared
    /// function-pointer type (`sig`) of the call site.
    CallPtr {
        /// The function-pointer value called through.
        ptr: Operand,
        /// Declared function-pointer type of the call site.
        sig: SigId,
        /// Argument values, one per callee parameter.
        args: Vec<Operand>,
        /// Register receiving the return value, if any.
        ret: Option<Reg>,
    },
    /// Return, optionally with a value.
    Ret {
        /// Returned value, if the function returns one.
        val: Option<Operand>,
    },
    /// `BUG()` — unconditional trap.
    Trap {
        /// Diagnostic code reported with the trap.
        code: u64,
    },
    /// No operation.
    Nop,
    /// LXFI guard: check the current principal may write
    /// `[base+off, base+off+len)`. Emitted only by the rewriter.
    GuardWrite {
        /// Base address of the checked range.
        base: Operand,
        /// Constant byte offset added to `base`.
        off: i64,
        /// Length in bytes of the checked range.
        len: Operand,
    },
    /// LXFI guard: before an indirect call through the function-pointer
    /// slot at `slot_base + slot_off`, validate the writer set and CALL
    /// capability. Emitted only by the kernel rewriter.
    GuardIndCall {
        /// Base address of the function-pointer slot.
        slot_base: Operand,
        /// Constant byte offset added to `slot_base`.
        slot_off: i64,
        /// Declared function-pointer type of the guarded call site.
        sig: SigId,
    },
}

impl Inst {
    /// Returns true for guard instructions, which only the rewriter emits.
    pub fn is_guard(&self) -> bool {
        matches!(self, Inst::GuardWrite { .. } | Inst::GuardIndCall { .. })
    }

    /// Returns the branch target if this instruction transfers control.
    pub fn jump_target(&self) -> Option<usize> {
        match self {
            Inst::Jmp { target } | Inst::Br { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// Rewrites the branch target, if any, with `f`.
    pub fn map_target(&mut self, f: impl Fn(usize) -> usize) {
        match self {
            Inst::Jmp { target } | Inst::Br { target, .. } => *target = f(*target),
            _ => {}
        }
    }

    /// Returns true if control never falls through to the next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Ret { .. } | Inst::Jmp { .. } | Inst::Trap { .. }
        )
    }

    /// The register written by this instruction, if any.
    pub fn def_reg(&self) -> Option<Reg> {
        match self {
            Inst::Mov { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::LoadFrame { dst, .. }
            | Inst::FrameAddr { dst, .. }
            | Inst::GlobalAddr { dst, .. }
            | Inst::SymAddr { dst, .. }
            | Inst::FuncAddr { dst, .. } => Some(*dst),
            Inst::CallLocal { ret, .. }
            | Inst::CallExtern { ret, .. }
            | Inst::CallPtr { ret, .. } => *ret,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_truncation() {
        assert_eq!(Width::B1.truncate(0x1234), 0x34);
        assert_eq!(Width::B2.truncate(0xdead_beef), 0xbeef);
        assert_eq!(Width::B4.truncate(0x1_0000_0001), 1);
        assert_eq!(Width::B8.truncate(u64::MAX), u64::MAX);
    }

    #[test]
    fn cond_signedness() {
        let neg1 = (-1i64) as u64;
        assert!(Cond::Lt.eval(neg1, 0), "-1 < 0 signed");
        assert!(!Cond::Ult.eval(neg1, 0), "u64::MAX not < 0 unsigned");
        assert!(Cond::Ge.eval(0, neg1));
        assert!(Cond::Ule.eval(1, 1));
        assert!(Cond::Ne.eval(1, 2));
        assert!(Cond::Gt.eval(5, 4));
    }

    #[test]
    fn def_reg_reporting() {
        let i = Inst::Mov {
            dst: Reg(3),
            src: Operand::Imm(1),
        };
        assert_eq!(i.def_reg(), Some(Reg(3)));
        let s = Inst::Store {
            src: Operand::Imm(0),
            base: Operand::Reg(Reg(1)),
            off: 0,
            width: Width::B8,
        };
        assert_eq!(s.def_reg(), None);
        let c = Inst::CallExtern {
            sym: SymbolId(0),
            args: vec![],
            ret: Some(Reg(0)),
        };
        assert_eq!(c.def_reg(), Some(Reg(0)));
    }

    #[test]
    fn guard_classification() {
        assert!(Inst::GuardWrite {
            base: Operand::Reg(Reg(0)),
            off: 0,
            len: Operand::Imm(8)
        }
        .is_guard());
        assert!(!Inst::Nop.is_guard());
    }

    #[test]
    fn target_mapping() {
        let mut j = Inst::Jmp { target: 4 };
        j.map_target(|t| t + 10);
        assert_eq!(j.jump_target(), Some(14));
        let mut n = Inst::Nop;
        n.map_target(|t| t + 10);
        assert_eq!(n.jump_target(), None);
    }
}
