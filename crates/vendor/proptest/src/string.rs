//! Sampling strings from a small regex subset.
//!
//! Supports exactly what string-literal strategies in this workspace
//! need: literal characters, character classes (`[a-z0-9_]`, with ranges
//! and literal members), and the quantifiers `{n}`, `{n,m}`, `?`, `*`,
//! `+` (unbounded repetition is capped at 8).

use crate::test_runner::TestRng;

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>), // inclusive ranges; singletons are (c, c)
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Atom {
    let mut ranges = Vec::new();
    let mut pending: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => {
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                return Atom::Class(ranges);
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().unwrap();
                let hi = chars.next().unwrap();
                ranges.push((lo, hi));
            }
            _ => {
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                pending = Some(c);
            }
        }
    }
    panic!("unterminated character class in regex strategy");
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (u32, u32) {
    match chars.peek() {
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("regex {n,m} lower bound"),
                    hi.trim().parse().expect("regex {n,m} upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("regex {n} count");
                    (n, n)
                }
            }
        }
        _ => (1, 1),
    }
}

/// Samples one string matching `pattern` (within the supported subset).
pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => parse_class(&mut chars),
            '\\' => Atom::Literal(chars.next().expect("dangling escape")),
            _ => Atom::Literal(c),
        };
        let (lo, hi) = parse_quantifier(&mut chars);
        atoms.push((atom, lo, hi));
    }
    let mut out = String::new();
    for (atom, lo, hi) in &atoms {
        let n = if lo == hi {
            *lo
        } else {
            lo + rng.below(u64::from(hi - lo + 1)) as u32
        };
        for _ in 0..n {
            match atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
                        .sum();
                    let mut pick = rng.below(total);
                    for &(lo, hi) in ranges {
                        let span = (hi as u64) - (lo as u64) + 1;
                        if pick < span {
                            out.push(char::from_u32(lo as u32 + pick as u32).unwrap());
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_pattern_samples_match() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let s = sample_regex("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }
}
