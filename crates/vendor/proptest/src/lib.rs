//! A minimal, API-compatible subset of the `proptest` crate.
//!
//! The build container has no access to crates.io, so this shim provides
//! exactly the surface the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive`, range and tuple strategies, [`strategy::Just`],
//! `prop_oneof!`, regex-literal string strategies, [`collection::vec`],
//! [`option::of`], `any::<T>()`, the `proptest!` macro (supporting both
//! `name in strategy` and `name: Type` parameters), and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! - **no shrinking** — a failing case reports its case index and seed so
//!   it can be replayed, but is not minimized;
//! - **uniform generation** — no size-biased or edge-case-weighted
//!   distributions beyond what the strategies themselves encode;
//! - `prop_assert*` panics (the runner catches and reports) instead of
//!   returning `TestCaseError`.
//!
//! Swap this shim for the real `proptest` by pointing the workspace
//! dependency back at the registry; no test source changes are required.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniformly selects one of the listed strategies per generated value.
///
/// Only the unweighted form is supported; all arms must share a value
/// type (they are boxed into a [`strategy::Union`]).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests.
///
/// Supports the subset of the real macro's grammar this workspace uses:
/// an optional `#![proptest_config(expr)]` header, then test functions
/// whose parameters are either `name in strategy` or `name: Type`
/// (shorthand for `name in any::<Type>()`), in any order.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($params:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __runner =
                    $crate::test_runner::TestRunner::new(__config, stringify!($name));
                $crate::__proptest_case!(__runner, $body, [], $($params)*);
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // Terminal: all parameters collected.
    ($runner:ident, $body:block, [$(($p:ident, $s:expr)),*], ) => {
        $runner.run(|__rng| {
            $(let $p = $crate::strategy::Strategy::generate(&$s, __rng);)*
            $body
        });
    };
    // `name in strategy`, more parameters follow.
    ($runner:ident, $body:block, [$(($p:ident, $s:expr)),*],
     $name:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_case!($runner, $body, [$(($p, $s),)* ($name, $strat)], $($rest)*);
    };
    // `name in strategy`, final parameter.
    ($runner:ident, $body:block, [$(($p:ident, $s:expr)),*],
     $name:ident in $strat:expr) => {
        $crate::__proptest_case!($runner, $body, [$(($p, $s),)* ($name, $strat)],);
    };
    // `name: Type`, more parameters follow.
    ($runner:ident, $body:block, [$(($p:ident, $s:expr)),*],
     $name:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_case!(
            $runner, $body,
            [$(($p, $s),)* ($name, $crate::arbitrary::any::<$ty>())],
            $($rest)*
        );
    };
    // `name: Type`, final parameter.
    ($runner:ident, $body:block, [$(($p:ident, $s:expr)),*],
     $name:ident : $ty:ty) => {
        $crate::__proptest_case!(
            $runner, $body,
            [$(($p, $s),)* ($name, $crate::arbitrary::any::<$ty>())],
        );
    };
}
