//! The [`Strategy`] trait and its combinators.

use std::ops::Range;
use std::rc::Rc;

use crate::string::sample_regex;
use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; gives up (panics, citing
    /// `reason`) after too many consecutive rejections.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive structures: `recurse` receives a strategy for the
    /// substructure and returns a strategy for one more level. `depth`
    /// bounds nesting; the remaining two parameters (desired size /
    /// branch factor in the real crate) are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Each level flips between terminating at a leaf and recursing
            // one deeper, so generated values span all depths up to the
            // bound.
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.reason
        );
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms (at least one required).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ------------------------------------------------------ range strategies

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty : $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}
impl_signed_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

// ------------------------------------------------------ tuple strategies

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ------------------------------------------- regex literals as strategies

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        sample_regex(self, rng)
    }
}
