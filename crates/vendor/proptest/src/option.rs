//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Bias toward Some (3:1), matching the real crate's spirit of
        // exercising the present case more often.
        if rng.index(4) == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}

/// `None` or a value from `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}
