//! `any::<T>()` — full-range strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// A full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
