//! Deterministic test execution: per-test seeded RNG and the case loop.

/// A small, fast, deterministic RNG (SplitMix64). Not cryptographic; the
/// only requirements here are decent equidistribution and stable output
/// for a given seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping is fine at test quality.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Run configuration; only the case count is meaningful in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the interpreter-heavy
        // system tests quick while still exercising plenty of cases.
        // Override per test with `#![proptest_config(...)]`.
        ProptestConfig { cases: 64 }
    }
}

/// Drives the case loop for one `proptest!` test function.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
    name: &'static str,
}

impl TestRunner {
    /// A runner seeded stably from the test's name (so each test has an
    /// independent, reproducible stream). `PROPTEST_SEED` overrides the
    /// base seed for replay experiments.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                seed ^= v;
            }
        }
        TestRunner { config, seed, name }
    }

    /// Runs `case` once per configured case with a per-case RNG. A panic
    /// in the body is reported with the case index and seed, then
    /// re-raised so the harness records the failure.
    pub fn run(&mut self, mut case: impl FnMut(&mut TestRng)) {
        for i in 0..self.config.cases {
            let mut rng = TestRng::new(self.seed.wrapping_add(u64::from(i)));
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                case(&mut rng);
            }));
            if let Err(e) = r {
                eprintln!(
                    "proptest {}: case {}/{} failed (base seed {:#x})",
                    self.name, i, self.config.cases, self.seed
                );
                std::panic::resume_unwind(e);
            }
        }
    }
}
