//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification: exact, or uniform in a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.lo + rng.index(self.size.hi - self.size.lo);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for vectors whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
