//! A minimal, API-compatible subset of the `rand` crate.
//!
//! Provides `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer and float ranges — the surface this
//! workspace uses. The generator is SplitMix64: deterministic for a
//! given seed (the workspace's calibrated models rely on that), but the
//! stream differs from the real crate's ChaCha-based `StdRng`.

use std::ops::Range;

/// Low-level 64-bit generation.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                let v = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                range.start.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator (SplitMix64 in this shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}
