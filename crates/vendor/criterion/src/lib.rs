//! A minimal, API-compatible subset of the `criterion` crate.
//!
//! Provides [`Criterion`], [`Bencher::iter`], benchmark groups, and the
//! `criterion_group!` / `criterion_main!` macros — enough to run this
//! workspace's `benches/` targets with `cargo bench` and print stable
//! median ns/iter figures. No HTML reports, no statistical regression
//! analysis; swap in the real crate by repointing the workspace
//! dependency once a registry is reachable.

use std::time::{Duration, Instant};

/// Measures one benchmark body.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    result_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the median ns/iteration across samples.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up, also used to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_iters >= 100_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = samples[samples.len() / 2];
    }
}

/// Benchmark driver and configuration.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement: Duration::from_secs(1),
            warm_up: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    fn run_one(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            result_ns: f64::NAN,
        };
        f(&mut b);
        if b.result_ns.is_nan() {
            println!("{name:<40} (no measurement)");
        } else {
            println!("{name:<40} time: {:>12.1} ns/iter", b.result_ns);
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Opens a named group; benchmarks inside print as `group/label`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, label: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, label);
        self.c.run_one(&full, f);
        self
    }

    /// Closes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function from a config expression and
/// target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
