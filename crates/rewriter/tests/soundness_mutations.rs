//! Adversarial hardening of the guard-soundness verifier.
//!
//! Two halves:
//!
//! 1. **Mutation corpus**: real rewriter output (straight-line merged
//!    runs, a diamond, a hoisted loop, frame stores, calls) is mutated
//!    one guard at a time — stripped, moved after its store, retargeted
//!    to another base, span shortened, offset shifted. Every store in
//!    the corpus programs writes a distinct byte range, so each guard
//!    is uniquely load-bearing and *every* mutant must be rejected. A
//!    verifier that lets one through would also let a rewriter bug
//!    through.
//! 2. **Proptest**: randomly generated programs (stores, frame stores,
//!    ALU, loads, forward branches, calls, counted loops) are run
//!    through `rewrite_module` under all four option combinations; the
//!    output must always prove sound under the module policy. This is
//!    the "rewriter output always verifies" half of the contract —
//!    including hoisted output, which is how the hoisting pass earns
//!    the right to stay untrusted.

use lxfi_machine::builder::regs::*;
use lxfi_machine::builder::ProgramBuilder;
use lxfi_machine::isa::{Cond, Inst, Operand, Reg, Width};
use lxfi_machine::soundness::{verify_soundness, SoundnessPolicy};
use lxfi_machine::Program;
use lxfi_rewriter::{rewrite_module, RewriteOptions};
use proptest::prelude::*;

// ------------------------------------------------------------- corpus

/// A program exercising every shape the module rewriter produces:
/// merged straight-line runs, a branch diamond, a guard-hoistable
/// loop, elided frame stores, and a fact-killing call. Every store
/// targets a distinct range so no guard is redundant.
fn corpus_program() -> Program {
    let mut pb = ProgramBuilder::new("corpus");
    let ext = pb.import_func("helper");
    pb.define("straight", 1, 16, |f| {
        f.store8(1i64, R0, 0); // merged run [0,24)
        f.mov(R2, 7i64);
        f.store8(R2, R0, 8);
        f.store8(3i64, R0, 16);
        f.store_frame(9i64, 0, Width::B8); // elided
        f.call_extern(ext, &[], None); // kills facts
        f.store8(4i64, R0, 24); // fresh guard after the call
        f.ret_void();
    });
    pb.define("diamond", 2, 0, |f| {
        let other = f.label();
        let join = f.label();
        f.br(Cond::Eq, R0, 0i64, other);
        f.store8(1i64, R1, 0);
        f.jmp(join);
        f.bind(other);
        f.store8(2i64, R1, 8);
        f.bind(join);
        f.store8(3i64, R1, 16);
        f.ret_void();
    });
    pb.define("loopy", 2, 0, |f| {
        // Bottom-tested copy loop with an invariant-base store: the
        // rewriter hoists this guard, so the corpus also mutates a
        // *hoisted* guard.
        let top = f.label();
        let done = f.label();
        f.mov(R2, 0i64);
        f.br(Cond::Eq, R0, 0i64, done);
        f.bind(top);
        f.store8(R2, R1, 32);
        f.add(R2, R2, 1i64);
        f.br(Cond::Lt, R2, R0, top);
        f.bind(done);
        f.ret_void();
    });
    pb.finish()
}

/// All (function, instruction) positions holding a `GuardWrite`.
fn guard_sites(p: &Program) -> Vec<(usize, usize)> {
    p.funcs
        .iter()
        .enumerate()
        .flat_map(|(fi, f)| {
            f.insts
                .iter()
                .enumerate()
                .filter(|(_, i)| matches!(i, Inst::GuardWrite { .. }))
                .map(move |(idx, _)| (fi, idx))
        })
        .collect()
}

/// Deletes instruction `idx` of function `fi`, remapping jump targets
/// so the mutant is structurally valid and fails only for soundness.
fn delete_inst(p: &Program, fi: usize, idx: usize) -> Program {
    let mut m = p.clone();
    m.funcs[fi].insts.remove(idx);
    for inst in &mut m.funcs[fi].insts {
        inst.map_target(|t| if t > idx { t - 1 } else { t });
    }
    m
}

/// Swaps the guard with the following instruction (used where that is
/// the store it protects — the guard then runs too late).
fn move_after_next(p: &Program, fi: usize, idx: usize) -> Program {
    let mut m = p.clone();
    m.funcs[fi].insts.swap(idx, idx + 1);
    m
}

fn rebase(p: &Program, fi: usize, idx: usize) -> Program {
    let mut m = p.clone();
    if let Inst::GuardWrite { base, .. } = &mut m.funcs[fi].insts[idx] {
        *base = match base {
            Operand::Reg(r) => Operand::Reg(Reg((r.0 + 1) % 16)),
            Operand::Imm(v) => Operand::Imm(*v + 8),
        };
    }
    m
}

fn shorten(p: &Program, fi: usize, idx: usize) -> Program {
    let mut m = p.clone();
    if let Inst::GuardWrite { len, .. } = &mut m.funcs[fi].insts[idx] {
        *len = Operand::Imm(1);
    }
    m
}

fn shift_off(p: &Program, fi: usize, idx: usize) -> Program {
    let mut m = p.clone();
    if let Inst::GuardWrite { off, .. } = &mut m.funcs[fi].insts[idx] {
        *off += 4096;
    }
    m
}

#[test]
fn every_corpus_mutant_is_rejected() {
    let rw = rewrite_module(&corpus_program(), RewriteOptions::default());
    verify_soundness(&rw.program, SoundnessPolicy::module()).expect("corpus baseline proves");
    assert!(
        rw.merge.guards_hoisted >= 1,
        "corpus exercises a hoisted guard"
    );

    let sites = guard_sites(&rw.program);
    assert!(sites.len() >= 5, "corpus should have several guard sites");

    let mut mutants = 0usize;
    for &(fi, idx) in &sites {
        let mut cases: Vec<(String, Program)> = vec![
            (
                format!("strip f{fi}@{idx}"),
                delete_inst(&rw.program, fi, idx),
            ),
            (format!("rebase f{fi}@{idx}"), rebase(&rw.program, fi, idx)),
            (
                format!("shorten f{fi}@{idx}"),
                shorten(&rw.program, fi, idx),
            ),
            (
                format!("shift f{fi}@{idx}"),
                shift_off(&rw.program, fi, idx),
            ),
        ];
        // Move-after-store applies where the guard directly precedes
        // its store (every non-hoisted site).
        if matches!(rw.program.funcs[fi].insts[idx + 1], Inst::Store { .. }) {
            cases.push((
                format!("move f{fi}@{idx}"),
                move_after_next(&rw.program, fi, idx),
            ));
        }
        for (what, mutant) in cases {
            mutants += 1;
            assert!(
                verify_soundness(&mutant, SoundnessPolicy::module()).is_err(),
                "verifier accepted broken mutant: {what}"
            );
        }
    }
    assert!(mutants >= 20, "corpus produced {mutants} mutants");
}

#[test]
fn diamond_guard_on_one_arm_only_is_rejected() {
    // The classic partial-domination case: rewriter output guards both
    // arms; stripping one arm's guard leaves the join store provable on
    // one path only, which the must-meet rejects.
    let mut pb = ProgramBuilder::new("m");
    pb.define("f", 2, 0, |f| {
        let other = f.label();
        let join = f.label();
        f.br(Cond::Eq, R0, 0i64, other);
        f.store8(1i64, R1, 0);
        f.jmp(join);
        f.bind(other);
        f.store8(2i64, R1, 0); // same range: guards are mutually redundant
        f.bind(join);
        f.store8(3i64, R1, 0); // relies on whichever arm ran
        f.ret_void();
    });
    let rw = rewrite_module(&pb.finish(), RewriteOptions::default());
    verify_soundness(&rw.program, SoundnessPolicy::module()).unwrap();
    // Strip the guard from one arm: the arm's own store loses its
    // proof, so the mutant must be rejected.
    let sites = guard_sites(&rw.program);
    let (fi, idx) = sites[0];
    let mutant = delete_inst(&rw.program, fi, idx);
    assert!(verify_soundness(&mutant, SoundnessPolicy::module()).is_err());
}

// ----------------------------------------------------------- proptest

/// One generated operation; fields are interpreted per `kind` to keep
/// the strategy flat and shrinkable (same trick as the backend oracle).
#[derive(Debug, Clone, Copy)]
struct GenOp {
    kind: u8,
    a: u8,
    b: u8,
    imm: i64,
}

fn arb_op() -> impl Strategy<Value = GenOp> {
    (0u8..8, 0u8..6, 0u8..6, -64i64..64).prop_map(|(kind, a, b, imm)| GenOp { kind, a, b, imm })
}

/// Builds a structurally valid program from the op list: stores through
/// arbitrary registers, frame stores, ALU, loads, forward branches,
/// calls, and (kind 7) a bottom-tested counted loop with an
/// invariant-base store — the hoisting pass's target shape.
fn build_program(ops: &[GenOp]) -> Program {
    let mut pb = ProgramBuilder::new("gen");
    let ext = pb.import_func("helper");
    pb.define("main", 2, 32, |f| {
        let mut pending: Vec<(usize, lxfi_machine::builder::Label)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let mut due = Vec::new();
            pending.retain(|(at, l)| {
                if *at <= i {
                    due.push(*l);
                    false
                } else {
                    true
                }
            });
            for l in due {
                f.bind(l);
            }
            let ra = Reg(op.a);
            let rb = Reg(op.b);
            let width = match op.imm & 3 {
                0 => Width::B1,
                1 => Width::B2,
                2 => Width::B4,
                _ => Width::B8,
            };
            match op.kind {
                0 => f.store(op.imm, ra, op.imm & 0xff, width),
                1 => f.store_frame(op.imm, (op.imm.unsigned_abs() % 24) as u32, Width::B8),
                2 => f.mov(ra, op.imm),
                3 => f.add(ra, rb, op.imm),
                4 => f.load(ra, rb, op.imm & 0xff, width),
                5 => {
                    let l = f.label();
                    f.br(Cond::Eq, ra, op.imm, l);
                    pending.push((i + 1 + (op.imm.unsigned_abs() as usize % 4), l));
                }
                6 => f.call_extern(ext, &[ra.into()], Some(rb)),
                _ => {
                    // Counted loop: store through rb (invariant), bump
                    // ra, backedge. Never executed — only verified.
                    let top = f.label();
                    f.mov(ra, 0i64);
                    f.bind(top);
                    f.store8(ra, rb, op.imm & 0xff);
                    f.add(ra, ra, 1i64);
                    f.br(Cond::Lt, ra, 4i64, top);
                }
            }
        }
        for (_, l) in pending {
            f.bind(l);
        }
        f.ret_void();
    });
    pb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The rewriter contract: whatever the input program and options,
    /// the rewritten output proves guard-sound under the module policy.
    #[test]
    fn rewriter_output_always_verifies(
        ops in proptest::collection::vec(arb_op(), 1..40),
        merge: bool,
        hoist: bool,
    ) {
        let p = build_program(&ops);
        let opts = RewriteOptions {
            merge_write_guards: merge,
            hoist_loop_guards: hoist,
        };
        let rw = rewrite_module(&p, opts);
        prop_assert!(rw.merge.hoists_reverted == 0, "hoist gate tripped");
        let report = verify_soundness(&rw.program, SoundnessPolicy::module());
        prop_assert!(report.is_ok(), "rewriter output failed: {:?}", report.err());
    }

    /// Stripping any guard from hoisted output with distinct store
    /// ranges is caught (loop bodies store through `rb`, straight-line
    /// ops store through other registers at other offsets — ranges can
    /// collide here, so only assert the baseline proves and hoisting
    /// never *creates* an unsound program).
    #[test]
    fn hoisting_never_breaks_a_provable_program(
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let p = build_program(&ops);
        let unhoisted = rewrite_module(&p, RewriteOptions {
            merge_write_guards: true,
            hoist_loop_guards: false,
        });
        let hoisted = rewrite_module(&p, RewriteOptions::default());
        prop_assert!(verify_soundness(&unhoisted.program, SoundnessPolicy::module()).is_ok());
        prop_assert!(verify_soundness(&hoisted.program, SoundnessPolicy::module()).is_ok());
        // Hoisting only ever moves or removes guard *executions*, never
        // adds or removes protected stores.
        let stores = |p: &Program| p.funcs.iter().flat_map(|f| &f.insts)
            .filter(|i| matches!(i, Inst::Store { .. })).count();
        prop_assert_eq!(stores(&unhoisted.program), stores(&hoisted.program));
    }
}
