//! The LXFI compile-time rewriter (§4).
//!
//! Two passes, mirroring the paper's gcc (kernel) and clang (module)
//! plugins:
//!
//! - [`kernel_pass`]: before every indirect call in core-kernel code,
//!   insert `lxfi_check_indcall(pptr, ahash)`. The pass traces the called
//!   pointer back to the memory slot it was loaded from (Figure 5); sites
//!   it cannot trace are reported for manual inspection (the paper found
//!   51 such sites out of 7,500).
//! - [`module_pass`]: insert a write guard before every memory store whose
//!   safety cannot be proven statically (frame-local stores at constant
//!   offsets are elided — the optimization behind MD5's 2% overhead,
//!   §8.3), and compute the module's initial capability grants from its
//!   import table (§4.2).
//! - [`propagate`]: propagate annotations from function-pointer types to
//!   the module functions assigned to them, verifying that a function
//!   reached from several sources gets *exactly the same* annotation
//!   (§4.2).

#![warn(missing_docs)]

pub mod kernel_pass;
pub mod module_pass;
pub mod propagate;

mod edit;
mod hoist;

pub use kernel_pass::{rewrite_kernel_thunks, KernelRewriteReport};
pub use module_pass::{rewrite_module, InitGrant, ModuleRewrite, RewriteOptions};
pub use propagate::{propagate, InterfaceSpec, PropagateError};
