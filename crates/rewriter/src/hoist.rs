//! Loop-invariant write-guard hoisting.
//!
//! A `GuardWrite` that a loop executes every iteration with the same
//! base register and span re-proves the same capability over and over;
//! with the compiled backend having removed dispatch overhead (PR 6),
//! those repeated table probes are the remaining per-iteration guard
//! cost. This pass moves such a guard to the loop header — executed
//! once per loop *entry* — and deletes the per-iteration copy.
//!
//! A guard is hoistable out of a natural loop when:
//!
//! - its span is an immediate and its base operand is **loop-invariant**
//!   (an immediate, or a register no instruction in the loop defines),
//!   so the guard checks the same byte range every iteration;
//! - the loop contains **no calls** — a call can revoke the WRITE
//!   capability, so a once-on-entry check would not be equivalent;
//! - the guard's block **dominates every latch and every exiting
//!   block**, i.e. the original guard already ran on every complete
//!   iteration and every normal exit — hoisting then never checks a
//!   range the original program would not have checked (it may trap
//!   *earlier* on a doomed iteration, which is more restrictive, never
//!   less);
//! - every backedge reaches the header through an explicit `Jmp`/`Br`
//!   (so it can be retargeted past the hoisted guard).
//!
//! The transformation inserts the guard at the header index — entry
//! edges (jumps and fall-through) land on it, exactly like
//! [`crate::edit::insert_before`]'s cannot-jump-over-a-guard rule —
//! and retargets only the backedges to the instruction after it. The
//! caller ([`crate::module_pass::rewrite_module`]) re-runs the
//! soundness verifier on the hoisted program and reverts wholesale if
//! the proof fails, so this pass never needs to be trusted.

use std::collections::BTreeSet;

use lxfi_machine::isa::{Inst, Operand, Reg};
use lxfi_machine::program::Function;
use lxfi_machine::soundness::{block_starts, block_succs};

/// Hoists loop-invariant write guards in one function until none are
/// left, returning the number of guards moved. Each application
/// re-derives the CFG, so nested loops migrate a guard outward one
/// level per round.
pub(crate) fn hoist_function(f: &mut Function) -> usize {
    let mut hoisted = 0;
    // Each round deletes one in-loop guard, so this terminates; the
    // bound is a safety net only.
    while hoisted < 1024 {
        if !hoist_one(f) {
            break;
        }
        hoisted += 1;
    }
    hoisted
}

/// Finds one hoistable guard and applies the move. Returns false when
/// no candidate exists.
fn hoist_one(f: &mut Function) -> bool {
    let insts = &f.insts;
    let starts = block_starts(insts);
    let n = starts.len();
    if n == 0 {
        return false;
    }
    let block_end = |b: usize| {
        if b + 1 < n {
            starts[b + 1]
        } else {
            insts.len()
        }
    };
    let succs: Vec<Vec<usize>> = (0..n).map(|b| block_succs(insts, &starts, b)).collect();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, ss) in succs.iter().enumerate() {
        for &s in ss {
            preds[s].push(b);
        }
    }

    // Blocks reachable from the function entry.
    let mut reach = vec![false; n];
    reach[0] = true;
    let mut stack = vec![0];
    while let Some(b) = stack.pop() {
        for &s in &succs[b] {
            if !reach[s] {
                reach[s] = true;
                stack.push(s);
            }
        }
    }

    // Iterative dominators over the reachable subgraph.
    let mut dom: Vec<Vec<bool>> = vec![vec![true; n]; n];
    dom[0] = (0..n).map(|i| i == 0).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for b in 1..n {
            if !reach[b] {
                continue;
            }
            let mut new = vec![true; n];
            for &p in preds[b].iter().filter(|&&p| reach[p]) {
                for (slot, &d) in new.iter_mut().zip(&dom[p]) {
                    *slot = *slot && d;
                }
            }
            new[b] = true;
            if new != dom[b] {
                dom[b] = new;
                changed = true;
            }
        }
    }

    // Natural loops: backedge b -> h where h dominates b. Loops sharing
    // a header are merged (union of bodies, all latches together).
    let mut headers: BTreeSet<usize> = BTreeSet::new();
    for b in (0..n).filter(|&b| reach[b]) {
        for &h in succs[b].iter().filter(|&&h| dom[b][h]) {
            headers.insert(h);
        }
    }
    for &h in &headers {
        let latches: Vec<usize> = (0..n)
            .filter(|&b| reach[b] && succs[b].contains(&h) && dom[b][h])
            .collect();
        // Loop body: everything reaching a latch without passing h.
        let mut in_loop = vec![false; n];
        in_loop[h] = true;
        let mut stack: Vec<usize> = Vec::new();
        for &l in &latches {
            if !in_loop[l] {
                in_loop[l] = true;
                stack.push(l);
            }
        }
        while let Some(b) = stack.pop() {
            for &p in preds[b].iter().filter(|&&p| reach[p]) {
                if !in_loop[p] {
                    in_loop[p] = true;
                    stack.push(p);
                }
            }
        }
        let body: Vec<usize> = (0..n).filter(|&b| in_loop[b]).collect();

        // Every backedge must be an explicit jump so it can skip the
        // hoisted guard; a latch falling through into the header cannot
        // be retargeted.
        let h_start = starts[h];
        if latches.iter().any(|&l| {
            let last = &insts[block_end(l) - 1];
            last.jump_target() != Some(h_start) && !last.is_terminator() && block_end(l) == h_start
        }) {
            continue;
        }
        let latch_terms: BTreeSet<usize> = latches
            .iter()
            .filter(|&&l| insts[block_end(l) - 1].jump_target() == Some(h_start))
            .map(|&l| block_end(l) - 1)
            .collect();
        // If some latch reaches the header neither by jump nor by
        // fall-through adjacency we mis-modelled the CFG; be safe.
        if latch_terms.len() + latches.iter().filter(|&&l| block_end(l) == h_start).count()
            < latches.len()
        {
            continue;
        }

        // A call anywhere in the loop can revoke write capabilities:
        // once-on-entry is then not equivalent to once-per-iteration.
        let has_call = body.iter().any(|&b| {
            insts[starts[b]..block_end(b)].iter().any(|i| {
                matches!(
                    i,
                    Inst::CallLocal { .. } | Inst::CallExtern { .. } | Inst::CallPtr { .. }
                )
            })
        });
        if has_call {
            continue;
        }
        let defined: BTreeSet<Reg> = body
            .iter()
            .flat_map(|&b| insts[starts[b]..block_end(b)].iter())
            .filter_map(|i| i.def_reg())
            .collect();
        let exiting: Vec<usize> = body
            .iter()
            .copied()
            .filter(|&b| succs[b].iter().any(|s| !in_loop[*s]))
            .collect();

        for &gb in &body {
            for (g, inst) in insts
                .iter()
                .enumerate()
                .take(block_end(gb))
                .skip(starts[gb])
            {
                let Inst::GuardWrite { base, len, .. } = inst else {
                    continue;
                };
                let invariant_base = match base {
                    Operand::Imm(_) => true,
                    Operand::Reg(r) => !defined.contains(r),
                };
                let imm_len = matches!(len, Operand::Imm(l) if *l > 0);
                // The guard must sit at or after the header physically
                // (our builder layouts always do) so the rebuild below
                // stays a simple insert+delete.
                let guaranteed =
                    exiting.iter().all(|&e| dom[e][gb]) && latches.iter().all(|&l| dom[l][gb]);
                if invariant_base && imm_len && g >= h_start && guaranteed {
                    apply_hoist(f, h_start, g, &latch_terms);
                    return true;
                }
            }
        }
    }
    false
}

/// Moves the guard at `g` to the header index `h_start`: entry edges
/// (and fall-through) execute it, backedge jumps in `latch_terms` are
/// retargeted past it, and the in-loop copy is deleted.
fn apply_hoist(f: &mut Function, h_start: usize, g: usize, latch_terms: &BTreeSet<usize>) {
    let old = &f.insts;
    let guard = old[g].clone();
    // New layout: old[0..h_start], guard, old[h_start..] minus old[g].
    // Old index i maps to: i (i < h_start), i+1 (h_start <= i < g),
    // i (i > g); a target of exactly g follows to the next survivor.
    let map = |t: usize, from_latch: bool| -> usize {
        if t == h_start {
            return if from_latch { h_start + 1 } else { h_start };
        }
        if t < h_start {
            t
        } else if t <= g {
            t + 1
        } else {
            t
        }
    };
    let remapped = |i: usize| {
        let mut inst = old[i].clone();
        inst.map_target(|t| map(t, latch_terms.contains(&i)));
        inst
    };
    let mut out: Vec<Inst> = Vec::with_capacity(old.len() + 1);
    out.extend((0..h_start).map(remapped));
    out.push(guard);
    out.extend((h_start..old.len()).filter(|&i| i != g).map(remapped));
    f.insts = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use lxfi_machine::builder::regs::*;
    use lxfi_machine::builder::ProgramBuilder;
    use lxfi_machine::isa::Cond;
    use lxfi_machine::soundness::{verify_soundness, SoundnessPolicy};
    use lxfi_machine::verify_program;

    fn count_guards(f: &Function) -> usize {
        f.insts.iter().filter(|i| i.is_guard()).count()
    }

    /// A bottom-tested loop storing through an invariant base: the
    /// canonical hoist shape (guard + store + bump + backedge).
    fn invariant_loop() -> lxfi_machine::Program {
        let mut pb = ProgramBuilder::new("t");
        pb.define("f", 2, 0, |f| {
            let top = f.label();
            f.mov(R2, 0i64);
            f.bind(top);
            f.guard_write(R1, 0, 8i64);
            f.store8(R2, R1, 0);
            f.add(R2, R2, 1i64);
            f.br(Cond::Lt, R2, R0, top);
            f.ret_void();
        });
        pb.finish()
    }

    #[test]
    fn hoists_invariant_guard_out_of_loop() {
        let mut p = invariant_loop();
        assert_eq!(hoist_function(&mut p.funcs[0]), 1);
        let f = &p.funcs[0];
        // Still exactly one guard, now before the loop: the backedge
        // targets the store, the entry path runs the guard.
        assert_eq!(count_guards(f), 1);
        assert!(f.insts[1].is_guard(), "guard sits at the old header");
        let backedge = f
            .insts
            .iter()
            .rev()
            .find_map(|i| i.jump_target())
            .expect("loop backedge");
        assert!(
            !f.insts[backedge].is_guard(),
            "backedge must skip the hoisted guard"
        );
        verify_program(&p).unwrap();
        verify_soundness(&p, SoundnessPolicy::module()).unwrap();
    }

    #[test]
    fn hoist_is_idempotent() {
        let mut p = invariant_loop();
        assert_eq!(hoist_function(&mut p.funcs[0]), 1);
        let once = p.funcs[0].insts.clone();
        assert_eq!(hoist_function(&mut p.funcs[0]), 0);
        assert_eq!(p.funcs[0].insts, once);
    }

    #[test]
    fn varying_base_is_not_hoisted() {
        let mut pb = ProgramBuilder::new("t");
        pb.define("f", 2, 0, |f| {
            let top = f.label();
            f.mov(R2, 0i64);
            f.bind(top);
            f.add(R3, R1, R2); // base recomputed every iteration
            f.guard_write(R3, 0, 8i64);
            f.store8(R2, R3, 0);
            f.add(R2, R2, 8i64);
            f.br(Cond::Lt, R2, R0, top);
            f.ret_void();
        });
        let mut p = pb.finish();
        assert_eq!(hoist_function(&mut p.funcs[0]), 0);
    }

    #[test]
    fn loop_with_call_is_not_hoisted() {
        let mut pb = ProgramBuilder::new("t");
        let ext = pb.import_func("may_revoke");
        pb.define("f", 2, 0, |f| {
            let top = f.label();
            f.mov(R2, 0i64);
            f.bind(top);
            f.guard_write(R1, 0, 8i64);
            f.store8(R2, R1, 0);
            f.call_extern(ext, &[], None);
            f.add(R2, R2, 1i64);
            f.br(Cond::Lt, R2, R0, top);
            f.ret_void();
        });
        let mut p = pb.finish();
        assert_eq!(hoist_function(&mut p.funcs[0]), 0);
    }

    #[test]
    fn conditional_guard_in_loop_is_not_hoisted() {
        // The guard sits on one arm of a diamond inside the loop: it
        // does not dominate the latch, so hoisting would check a range
        // some iterations never check.
        let mut pb = ProgramBuilder::new("t");
        pb.define("f", 2, 0, |f| {
            let top = f.label();
            let skip = f.label();
            f.mov(R2, 0i64);
            f.bind(top);
            f.br(Cond::Eq, R2, 7i64, skip);
            f.guard_write(R1, 0, 8i64);
            f.store8(R2, R1, 0);
            f.bind(skip);
            f.add(R2, R2, 1i64);
            f.br(Cond::Lt, R2, R0, top);
            f.ret_void();
        });
        let mut p = pb.finish();
        assert_eq!(hoist_function(&mut p.funcs[0]), 0);
    }

    #[test]
    fn rotated_loop_guard_not_dominating_exit_stays_put() {
        // Top-tested loop: the exit test is the header, which the
        // guard's block does not dominate.
        let mut pb = ProgramBuilder::new("t");
        pb.define("f", 2, 0, |f| {
            let top = f.label();
            let out = f.label();
            f.mov(R2, 0i64);
            f.bind(top);
            f.br(Cond::Ge, R2, R0, out);
            f.guard_write(R1, 0, 8i64);
            f.store8(R2, R1, 0);
            f.add(R2, R2, 1i64);
            f.jmp(top);
            f.bind(out);
            f.ret_void();
        });
        let mut p = pb.finish();
        assert_eq!(hoist_function(&mut p.funcs[0]), 0);
    }

    #[test]
    fn hoisted_loop_still_executes_correctly() {
        use lxfi_machine::program::{FuncId, GlobalId, SigId, SymbolId};
        use lxfi_machine::{run_function, AddressSpace, Env, Trap, Word};

        /// Bare-minimum Env: counts write guards, permits everything.
        struct CountEnv {
            mem: AddressSpace,
            sp: Word,
            guard_writes: u64,
        }
        impl Env for CountEnv {
            fn mem(&self) -> &AddressSpace {
                &self.mem
            }
            fn consume(&mut self, _cycles: u64) -> Result<(), Trap> {
                Ok(())
            }
            fn push_frame(&mut self, size: u32) -> Result<Word, Trap> {
                self.sp -= u64::from(size);
                Ok(self.sp)
            }
            fn pop_frame(&mut self, size: u32) {
                self.sp += u64::from(size);
            }
            fn guard_write(&mut self, _addr: Word, _len: Word) -> Result<(), Trap> {
                self.guard_writes += 1;
                Ok(())
            }
            fn guard_indcall(&mut self, _slot: Word, _sig: SigId) -> Result<(), Trap> {
                Ok(())
            }
            fn call_extern(&mut self, _sym: SymbolId, _args: &[Word]) -> Result<Word, Trap> {
                Ok(0)
            }
            fn call_ptr(&mut self, _t: Word, _s: SigId, _a: &[Word]) -> Result<Word, Trap> {
                Ok(0)
            }
            fn global_addr(&self, _g: GlobalId) -> Result<Word, Trap> {
                Ok(0)
            }
            fn sym_addr(&self, _s: SymbolId) -> Result<Word, Trap> {
                Ok(0)
            }
            fn func_addr(&self, _f: FuncId) -> Result<Word, Trap> {
                Ok(0)
            }
        }

        // Run the hoisted program and check the loop still stores every
        // word while the guard fires once per entry, not per iteration.
        let mut p = invariant_loop();
        assert_eq!(hoist_function(&mut p.funcs[0]), 1);
        verify_soundness(&p, SoundnessPolicy::module()).unwrap();
        let mem = AddressSpace::new();
        let base = 0x1000u64;
        mem.map_range(base, 0x1000);
        let mut env = CountEnv {
            mem,
            sp: base + 0x1000,
            guard_writes: 0,
        };
        run_function(&mut env, &p, FuncId(0), &[4, base]).unwrap();
        assert_eq!(env.guard_writes, 1, "one guard per loop entry");
        let last = env
            .mem
            .read(base, lxfi_machine::Width::B8)
            .expect("loop stored through base");
        assert_eq!(last, 3, "final iteration stored counter value 3");
    }
}
