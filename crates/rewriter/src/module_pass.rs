//! The module rewriter (§4.2).
//!
//! For each module function, inserts a [`GuardWrite`] before every store
//! whose safety the verifier cannot prove. Frame-local stores
//! (`StoreFrame`) are statically bounds-checked by the KIR verifier and
//! fall inside the thread-stack WRITE capability, so they need no guard —
//! this is the constant-offset elision the paper credits for MD5's 2%
//! overhead (§8.3).
//!
//! The pass also performs a peephole optimization: consecutive stores
//! through the same (unmodified) base register are covered by one merged
//! guard spanning all of them, mirroring the paper's observation that a
//! compile-time approach "provides opportunities for compile-time
//! optimizations" that binary rewriters like XFI cannot exploit. Merge
//! runs are **gap-tolerant**: pure register-ALU instructions (moves,
//! arithmetic, address materialization) may sit between the stores as
//! long as they do not redefine the base register — they cannot change
//! where the stores land, touch memory, or transfer control, so the
//! merged guard's extent is unaffected. Real store sequences (struct
//! field fills computing each value just before storing it) merge whole
//! instead of breaking at every intervening `mov`.
//!
//! Finally it derives the module-initialization grant list from the
//! import table: a CALL capability for every imported function's wrapper
//! and a WRITE capability for every imported data symbol, granted to the
//! module's *shared* principal at load time.
//!
//! [`GuardWrite`]: lxfi_machine::isa::Inst::GuardWrite

use lxfi_machine::isa::{Inst, Operand, Reg};
use lxfi_machine::program::{ImportKind, Program};
use lxfi_machine::soundness::{verify_soundness, SoundnessPolicy};

use crate::edit::insert_before;
use crate::hoist::hoist_function;

/// Options controlling the module pass.
#[derive(Debug, Clone, Copy)]
pub struct RewriteOptions {
    /// Merge consecutive same-base store guards into one range guard.
    /// Merging is strictly *more* restrictive (the principal must own the
    /// whole spanned range), never less.
    pub merge_write_guards: bool,
    /// Hoist loop-invariant write guards to the loop header (see
    /// [`crate::hoist`]), turning a per-iteration table probe into a
    /// per-entry one. The hoisted program must re-pass the soundness
    /// verifier or the whole hoist is reverted.
    pub hoist_loop_guards: bool,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            merge_write_guards: true,
            hoist_loop_guards: true,
        }
    }
}

/// An initial capability grant derived from the import table (§4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitGrant {
    /// CALL capability for imported function `name` (resolved to the
    /// wrapper address at load).
    Call {
        /// Kernel symbol name.
        name: String,
    },
    /// WRITE capability over imported data symbol `name`.
    Write {
        /// Kernel symbol name.
        name: String,
    },
}

/// Counters for the store-guard merge peephole.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MergeStats {
    /// Guards saved by merging same-base stores into one range guard.
    pub guards_merged: usize,
    /// Pure register-ALU instructions tolerated *inside* merge runs.
    /// Each one sat between two stores that would otherwise have been
    /// guarded separately, so this counts the elisions the gap
    /// tolerance bought beyond strict-adjacency merging.
    pub gap_insts_tolerated: usize,
    /// Loop-invariant guards moved from a loop body to its header —
    /// each one turns a per-iteration guard execution into a per-entry
    /// one.
    pub guards_hoisted: usize,
    /// Hoists undone because the hoisted program failed the soundness
    /// verifier (always 0 in practice; the gate exists so the hoisting
    /// pass never needs to be trusted).
    pub hoists_reverted: usize,
}

/// Result of rewriting one module.
#[derive(Debug)]
pub struct ModuleRewrite {
    /// The instrumented program.
    pub program: Program,
    /// Initial grants for the shared principal.
    pub init_grants: Vec<InitGrant>,
    /// Number of store guards inserted.
    pub guards_inserted: usize,
    /// Stores proven safe statically (frame-local) — no guard.
    pub guards_elided: usize,
    /// Merge-peephole counters.
    pub merge: MergeStats,
}

/// Runs the module pass.
pub fn rewrite_module(input: &Program, opts: RewriteOptions) -> ModuleRewrite {
    let mut program = input.clone();
    let mut guards_inserted = 0;
    let mut guards_elided = 0;
    let mut merge = MergeStats::default();

    for f in &mut program.funcs {
        let leaders = block_leaders(&f.insts);
        let mut inserts: Vec<(usize, Inst)> = Vec::new();
        let mut i = 0;
        while i < f.insts.len() {
            match &f.insts[i] {
                Inst::StoreFrame { .. } => {
                    // Statically verified in-frame: covered by the
                    // thread-stack WRITE capability. No guard.
                    guards_elided += 1;
                    i += 1;
                }
                Inst::Store {
                    base, off, width, ..
                } => {
                    let (group_end, gap_insts) = if opts.merge_write_guards {
                        store_group_end(&f.insts, i, *base, &leaders)
                    } else {
                        (i + 1, 0)
                    };
                    if group_end > i + 1 {
                        // Merged guard spanning the whole group (the
                        // extent scans only the stores, so tolerated
                        // gap instructions cannot widen it).
                        let (lo, span) = group_extent(&f.insts[i..group_end]);
                        let stores = f.insts[i..group_end]
                            .iter()
                            .filter(|inst| matches!(inst, Inst::Store { .. }))
                            .count();
                        inserts.push((
                            i,
                            Inst::GuardWrite {
                                base: *base,
                                off: lo,
                                len: Operand::Imm(span as i64),
                            },
                        ));
                        guards_inserted += 1;
                        merge.guards_merged += stores - 1;
                        merge.gap_insts_tolerated += gap_insts;
                    } else {
                        inserts.push((
                            i,
                            Inst::GuardWrite {
                                base: *base,
                                off: *off,
                                len: Operand::Imm(width.bytes() as i64),
                            },
                        ));
                        guards_inserted += 1;
                    }
                    i = group_end;
                }
                _ => i += 1,
            }
        }
        f.insts = insert_before(&f.insts, inserts);
    }

    // Loop-invariant guard hoisting, gated on the soundness verifier:
    // if the hoisted program no longer proves every store
    // guard-dominated, throw the whole hoist away and ship the
    // straightforwardly-guarded version.
    if opts.hoist_loop_guards {
        let unhoisted = program.clone();
        let mut hoisted = 0;
        for f in &mut program.funcs {
            hoisted += hoist_function(f);
        }
        if hoisted > 0 {
            match verify_soundness(&program, SoundnessPolicy::module()) {
                Ok(_) => merge.guards_hoisted = hoisted,
                Err(_) => {
                    program = unhoisted;
                    merge.hoists_reverted = hoisted;
                }
            }
        }
    }

    let init_grants = input
        .imports
        .iter()
        .map(|imp| match imp.kind {
            ImportKind::Func => InitGrant::Call {
                name: imp.name.clone(),
            },
            ImportKind::Data => InitGrant::Write {
                name: imp.name.clone(),
            },
        })
        .collect();

    ModuleRewrite {
        program,
        init_grants,
        guards_inserted,
        guards_elided,
        merge,
    }
}

/// Instruction indices that start a basic block (targets of any branch).
fn block_leaders(body: &[Inst]) -> Vec<bool> {
    let mut leaders = vec![false; body.len() + 1];
    for inst in body {
        if let Some(t) = inst.jump_target() {
            leaders[t] = true;
        }
    }
    leaders
}

/// True for pure register-ALU instructions: no memory effect, no
/// capability-state effect, no control transfer. Such an instruction may
/// sit inside a merge run — it cannot move where the run's stores land
/// (unless it redefines the base register, which the caller checks).
fn is_pure_reg_alu(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Mov { .. }
            | Inst::Bin { .. }
            | Inst::FrameAddr { .. }
            | Inst::GlobalAddr { .. }
            | Inst::SymAddr { .. }
            | Inst::FuncAddr { .. }
    )
}

/// Returns the exclusive end of the run of `Store`s through `base`
/// starting at `start` (ending just past the last store), plus the
/// number of tolerated gap instructions inside the run. The run stops at
/// block boundaries, any redefinition of `base`, and any instruction
/// that could touch memory, change capability state (calls), or transfer
/// control; pure register-ALU instructions that leave `base` alone are
/// stepped over and counted.
fn store_group_end(body: &[Inst], start: usize, base: Operand, leaders: &[bool]) -> (usize, usize) {
    let base_reg = match base {
        Operand::Reg(r) => Some(r),
        Operand::Imm(_) => None,
    };
    let redefines_base = |inst: &Inst| match (base_reg, inst.def_reg()) {
        (Some(r), Some(def)) => def == r,
        _ => false,
    };
    let mut end = start + 1; // exclusive end: one past the last store
    let mut cursor = start + 1;
    let mut gaps_pending = 0;
    let mut gap_insts = 0;
    while cursor < body.len() {
        if leaders[cursor] {
            break; // A branch may land here and skip the merged guard.
        }
        match &body[cursor] {
            Inst::Store { base: b, .. } if *b == base => {
                gap_insts += gaps_pending; // the gap sat between stores
                gaps_pending = 0;
                cursor += 1;
                end = cursor;
            }
            inst if is_pure_reg_alu(inst) && !redefines_base(inst) => {
                gaps_pending += 1;
                cursor += 1;
            }
            _ => break,
        }
    }
    let _ = base_reg.map(|r: Reg| r); // silence unused in non-debug builds
    (end, gap_insts)
}

/// `[lo, hi)` byte extent covered by a run of stores (same base).
fn group_extent(group: &[Inst]) -> (i64, u64) {
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for inst in group {
        if let Inst::Store { off, width, .. } = inst {
            lo = lo.min(*off);
            hi = hi.max(*off + width.bytes() as i64);
        }
    }
    (lo, (hi - lo) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lxfi_machine::builder::regs::*;
    use lxfi_machine::builder::ProgramBuilder;
    use lxfi_machine::isa::{Cond, Width};
    use lxfi_machine::verify_program;

    #[test]
    fn guards_inserted_before_stores() {
        let mut pb = ProgramBuilder::new("m");
        pb.define("f", 1, 0, |f| {
            f.store8(1i64, R0, 0);
            f.ret_void();
        });
        let rw = rewrite_module(&pb.finish(), RewriteOptions::default());
        let insts = &rw.program.funcs[0].insts;
        assert!(insts[0].is_guard());
        assert!(matches!(insts[1], Inst::Store { .. }));
        assert_eq!(rw.guards_inserted, 1);
        verify_program(&rw.program).unwrap();
    }

    #[test]
    fn frame_stores_are_elided() {
        let mut pb = ProgramBuilder::new("m");
        pb.define("f", 0, 32, |f| {
            f.store_frame(1i64, 0, Width::B8);
            f.store_frame(2i64, 8, Width::B8);
            f.ret_void();
        });
        let rw = rewrite_module(&pb.finish(), RewriteOptions::default());
        assert_eq!(rw.guards_inserted, 0);
        assert_eq!(rw.guards_elided, 2);
        assert_eq!(rw.program.code_size(), 3, "no code growth");
    }

    #[test]
    fn consecutive_stores_same_base_merge() {
        let mut pb = ProgramBuilder::new("m");
        pb.define("init_obj", 1, 0, |f| {
            f.store8(0i64, R0, 0);
            f.store8(0i64, R0, 8);
            f.store(0i64, R0, 16, Width::B4);
            f.ret_void();
        });
        let rw = rewrite_module(&pb.finish(), RewriteOptions::default());
        assert_eq!(rw.guards_inserted, 1);
        assert_eq!(rw.merge.guards_merged, 2);
        assert_eq!(rw.merge.gap_insts_tolerated, 0);
        match &rw.program.funcs[0].insts[0] {
            Inst::GuardWrite { off, len, .. } => {
                assert_eq!(*off, 0);
                assert_eq!(*len, Operand::Imm(20));
            }
            other => panic!("expected merged guard, got {other:?}"),
        }
    }

    #[test]
    fn merge_disabled_guards_each_store() {
        let mut pb = ProgramBuilder::new("m");
        pb.define("f", 1, 0, |f| {
            f.store8(0i64, R0, 0);
            f.store8(0i64, R0, 8);
            f.ret_void();
        });
        let rw = rewrite_module(
            &pb.finish(),
            RewriteOptions {
                merge_write_guards: false,
                ..Default::default()
            },
        );
        assert_eq!(rw.guards_inserted, 2);
        assert_eq!(rw.merge, MergeStats::default());
    }

    #[test]
    fn pure_alu_gap_does_not_break_the_merge() {
        // A field fill computing each value just before storing it:
        //   store [r0+0]; mov r1, 7; add r2, r1, 1; store [r0+8]
        // The mov/add cannot move the store base, so one guard covers
        // both stores and the gap instructions are counted.
        let mut pb = ProgramBuilder::new("m");
        pb.define("f", 3, 0, |f| {
            f.store8(1i64, R0, 0);
            f.mov(R1, 7i64);
            f.add(R2, R1, 1i64);
            f.store8(R2, R0, 8);
            f.ret_void();
        });
        let rw = rewrite_module(&pb.finish(), RewriteOptions::default());
        assert_eq!(rw.guards_inserted, 1);
        assert_eq!(rw.merge.guards_merged, 1);
        assert_eq!(rw.merge.gap_insts_tolerated, 2);
        match &rw.program.funcs[0].insts[0] {
            Inst::GuardWrite { off, len, .. } => {
                assert_eq!(*off, 0);
                assert_eq!(*len, Operand::Imm(16), "extent spans the stores only");
            }
            other => panic!("expected merged guard, got {other:?}"),
        }
        verify_program(&rw.program).unwrap();
    }

    #[test]
    fn trailing_alu_after_last_store_is_not_counted() {
        let mut pb = ProgramBuilder::new("m");
        pb.define("f", 2, 0, |f| {
            f.store8(1i64, R0, 0);
            f.store8(2i64, R0, 8);
            f.mov(R1, 7i64); // after the run: not a tolerated gap
            f.ret_void();
        });
        let rw = rewrite_module(&pb.finish(), RewriteOptions::default());
        assert_eq!(rw.guards_inserted, 1);
        assert_eq!(rw.merge.guards_merged, 1);
        assert_eq!(rw.merge.gap_insts_tolerated, 0);
    }

    #[test]
    fn gap_redefining_base_breaks_the_merge() {
        let mut pb = ProgramBuilder::new("m");
        pb.define("f", 2, 0, |f| {
            f.store8(1i64, R0, 0);
            f.add(R0, R0, 0x100i64); // redefines the base: run ends
            f.store8(2i64, R0, 8);
            f.ret_void();
        });
        let rw = rewrite_module(&pb.finish(), RewriteOptions::default());
        assert_eq!(rw.guards_inserted, 2);
        assert_eq!(rw.merge, MergeStats::default());
        verify_program(&rw.program).unwrap();
    }

    #[test]
    fn memory_touching_gap_breaks_the_merge() {
        // A load is not a pure register-ALU instruction; stay
        // conservative and end the run.
        let mut pb = ProgramBuilder::new("m");
        pb.define("f", 3, 0, |f| {
            f.store8(1i64, R0, 0);
            f.load(R1, R2, 0, Width::B8);
            f.store8(R1, R0, 8);
            f.ret_void();
        });
        let rw = rewrite_module(&pb.finish(), RewriteOptions::default());
        assert_eq!(rw.guards_inserted, 2);
        assert_eq!(rw.merge, MergeStats::default());
    }

    #[test]
    fn merge_stops_at_branch_targets() {
        let mut pb = ProgramBuilder::new("m");
        pb.define("f", 2, 0, |f| {
            let mid = f.label();
            f.br(Cond::Eq, R1, 0i64, mid);
            f.store8(0i64, R0, 0);
            f.bind(mid); // branch lands between the stores
            f.store8(0i64, R0, 8);
            f.ret_void();
        });
        let rw = rewrite_module(&pb.finish(), RewriteOptions::default());
        assert_eq!(
            rw.guards_inserted, 2,
            "a merged guard would be skippable via the branch"
        );
        verify_program(&rw.program).unwrap();
        // The branch must land on the second guard, not the second store.
        let insts = &rw.program.funcs[0].insts;
        let target = insts[0].jump_target().unwrap();
        assert!(insts[target].is_guard());
    }

    #[test]
    fn merge_stops_at_base_redefinition() {
        let mut pb = ProgramBuilder::new("m");
        pb.define("f", 1, 0, |f| {
            f.store8(R0, R0, 0); // store also redefines nothing; base reused
            f.mov(R0, 0x9000i64); // redefines base
            f.store8(0i64, R0, 8);
            f.ret_void();
        });
        let rw = rewrite_module(&pb.finish(), RewriteOptions::default());
        assert_eq!(rw.guards_inserted, 2);
    }

    #[test]
    fn init_grants_from_import_table() {
        let mut pb = ProgramBuilder::new("m");
        pb.import_func("kmalloc");
        pb.import_func("netif_rx");
        pb.import_data("jiffies");
        pb.define("f", 0, 0, |f| f.ret_void());
        let rw = rewrite_module(&pb.finish(), RewriteOptions::default());
        assert_eq!(
            rw.init_grants,
            vec![
                InitGrant::Call {
                    name: "kmalloc".into()
                },
                InitGrant::Call {
                    name: "netif_rx".into()
                },
                InitGrant::Write {
                    name: "jiffies".into()
                },
            ]
        );
    }

    #[test]
    fn rewritten_program_always_verifies() {
        let mut pb = ProgramBuilder::new("m");
        pb.define("loopy", 2, 16, |f| {
            let top = f.label();
            let out = f.label();
            f.bind(top);
            f.br(Cond::Eq, R1, 0i64, out);
            f.store8(R1, R0, 0);
            f.store_frame(R1, 0, Width::B8);
            f.sub(R1, R1, 1i64);
            f.jmp(top);
            f.bind(out);
            f.ret_void();
        });
        let rw = rewrite_module(&pb.finish(), RewriteOptions::default());
        verify_program(&rw.program).unwrap();
        assert_eq!(rw.guards_inserted, 1);
        assert_eq!(rw.guards_elided, 1);
    }
}
