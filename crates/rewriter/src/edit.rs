//! Instruction-stream editing with jump-target fixup.

use lxfi_machine::isa::Inst;

/// Rebuilds a function body with `inserts` placed *before* the original
/// instruction at each index, remapping all jump targets.
///
/// `inserts` pairs `(index, instruction)`; indices refer to the original
/// stream and may repeat (multiple guards before one instruction keep
/// their given order).
pub fn insert_before(body: &[Inst], mut inserts: Vec<(usize, Inst)>) -> Vec<Inst> {
    if inserts.is_empty() {
        return body.to_vec();
    }
    inserts.sort_by_key(|(i, _)| *i);
    // new_index[i] = index of original instruction i in the new stream.
    let mut new_index = Vec::with_capacity(body.len() + 1);
    let mut out: Vec<Inst> = Vec::with_capacity(body.len() + inserts.len());
    let mut ins = inserts.into_iter().peekable();
    for (i, inst) in body.iter().enumerate() {
        // A branch that targeted instruction `i` must land on the first
        // guard inserted before it — otherwise the guard could be jumped
        // over, which would be an isolation bypass.
        new_index.push(out.len());
        while let Some((at, _)) = ins.peek() {
            if *at == i {
                let (_, g) = ins.next().unwrap();
                out.push(g);
            } else {
                break;
            }
        }
        out.push(inst.clone());
    }
    // Trailing inserts (index == body.len()) are not supported: guards
    // always precede an existing instruction.
    assert!(ins.next().is_none(), "insert index out of range");
    new_index.push(out.len());
    for inst in &mut out {
        inst.map_target(|t| new_index[t]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lxfi_machine::isa::{Operand, Reg};

    fn nop() -> Inst {
        Inst::Nop
    }

    fn guard() -> Inst {
        Inst::GuardWrite {
            base: Operand::Reg(Reg(0)),
            off: 0,
            len: Operand::Imm(8),
        }
    }

    #[test]
    fn inserts_and_remaps_targets() {
        // 0: jmp -> 2 ; 1: nop ; 2: ret
        let body = vec![Inst::Jmp { target: 2 }, nop(), Inst::Ret { val: None }];
        let out = insert_before(&body, vec![(2, guard())]);
        assert_eq!(out.len(), 4);
        // The jump must now target the guard (so the guard is not skipped).
        assert_eq!(out[0].jump_target(), Some(2));
        assert!(out[2].is_guard());
        assert!(matches!(out[3], Inst::Ret { .. }));
    }

    #[test]
    fn multiple_inserts_at_same_index_keep_order() {
        let body = vec![nop(), Inst::Ret { val: None }];
        let g2 = Inst::GuardWrite {
            base: Operand::Reg(Reg(1)),
            off: 4,
            len: Operand::Imm(4),
        };
        let out = insert_before(&body, vec![(1, guard()), (1, g2.clone())]);
        assert_eq!(out[1], guard());
        assert_eq!(out[2], g2);
    }

    #[test]
    fn backward_branch_remapped() {
        // 0: nop ; 1: br -> 0 ; 2: ret — insert before 0.
        let body = vec![nop(), Inst::Jmp { target: 0 }, Inst::Ret { val: None }];
        let out = insert_before(&body, vec![(0, guard())]);
        assert_eq!(out[2].jump_target(), Some(0), "target now the guard");
    }

    #[test]
    fn empty_inserts_is_identity() {
        let body = vec![nop(), Inst::Ret { val: None }];
        assert_eq!(insert_before(&body, vec![]), body);
    }
}
