//! The kernel rewriter (§4.1, Figure 5).
//!
//! Core-kernel code that invokes function pointers a module may have
//! supplied must be preceded by `lxfi_check_indcall(pptr, ahash)`, where
//! `pptr` is the address of the *original memory slot* the pointer came
//! from — not the local copy. A simple intra-procedural analysis traces
//! the called register back to its defining load:
//!
//! ```text
//! handler = device->ops->handler;     // Load r2, [r1+8]
//! ...
//! lxfi_check_indcall(&device->ops->handler, ahash);   // inserted
//! handler(device);                     // CallPtr r2
//! ```
//!
//! Sites where the pointer's origin cannot be traced (value produced in
//! another function, base register clobbered, block boundary crossed) are
//! reported for manual inspection — the paper found 51 such cases among
//! 7,500 kernel indirect-call sites.

use lxfi_machine::isa::{Inst, Operand, Reg};
use lxfi_machine::program::Program;

use crate::edit::insert_before;

/// Outcome of rewriting the kernel thunks.
#[derive(Debug)]
pub struct KernelRewriteReport {
    /// The instrumented program.
    pub program: Program,
    /// Number of indirect-call sites guarded.
    pub guarded: usize,
    /// Sites whose pointer origin the analysis could not trace:
    /// `(function name, instruction index)`.
    pub untraceable: Vec<(String, usize)>,
}

/// Runs the kernel pass over a program of core-kernel thunks.
pub fn rewrite_kernel_thunks(input: &Program) -> KernelRewriteReport {
    let mut program = input.clone();
    let mut guarded = 0;
    let mut untraceable = Vec::new();

    for f in &mut program.funcs {
        let leaders = block_leaders(&f.insts);
        let mut inserts: Vec<(usize, Inst)> = Vec::new();
        for (i, inst) in f.insts.iter().enumerate() {
            let Inst::CallPtr { ptr, sig, .. } = inst else {
                continue;
            };
            let Operand::Reg(preg) = ptr else {
                // A constant function-pointer operand has no memory slot;
                // treat as untraceable (requires manual inspection).
                untraceable.push((f.name.clone(), i));
                continue;
            };
            match trace_back(&f.insts, i, *preg, &leaders) {
                Some((base, off)) => {
                    inserts.push((
                        i,
                        Inst::GuardIndCall {
                            slot_base: base,
                            slot_off: off,
                            sig: *sig,
                        },
                    ));
                    guarded += 1;
                }
                None => untraceable.push((f.name.clone(), i)),
            }
        }
        f.insts = insert_before(&f.insts, inserts);
    }

    KernelRewriteReport {
        program,
        guarded,
        untraceable,
    }
}

fn block_leaders(body: &[Inst]) -> Vec<bool> {
    let mut leaders = vec![false; body.len() + 1];
    for inst in body {
        if let Some(t) = inst.jump_target() {
            leaders[t] = true;
        }
    }
    leaders
}

/// Walks backwards from `site` looking for the load that defined `preg`,
/// then confirms the load's base register is not redefined between the
/// load and the call site. Conservatively aborts at block boundaries.
fn trace_back(body: &[Inst], site: usize, preg: Reg, leaders: &[bool]) -> Option<(Operand, i64)> {
    let mut def_idx = None;
    for j in (0..site).rev() {
        // Stop at block boundaries: another path may define preg.
        if leaders[j + 1] {
            break;
        }
        if body[j].def_reg() == Some(preg) {
            def_idx = Some(j);
            break;
        }
    }
    let j = def_idx?;
    let Inst::Load {
        base, off, width, ..
    } = &body[j]
    else {
        return None; // Defined by something other than a slot load.
    };
    if width.bytes() != 8 {
        return None; // Function pointers are full words.
    }
    // The slot address (base+off) must still be computable at the call
    // site: the base register must not be redefined in between.
    if let Operand::Reg(base_reg) = base {
        for inst in &body[j + 1..site] {
            if inst.def_reg() == Some(*base_reg) {
                return None;
            }
        }
    }
    Some((*base, *off))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lxfi_machine::builder::regs::*;
    use lxfi_machine::builder::ProgramBuilder;
    use lxfi_machine::isa::{Cond, Width};
    use lxfi_machine::verify_program;

    #[test]
    fn figure5_pattern_is_guarded() {
        // handler = device->ops->handler; handler(device)
        let mut pb = ProgramBuilder::new("kernel");
        let sig = pb.sig("handler_func_t", 1);
        pb.define("dispatch", 1, 0, |f| {
            f.load8(R1, R0, 16); // r1 = device->ops
            f.load8(R2, R1, 8); // r2 = ops->handler
            f.call_ptr(R2, sig, &[R0.into()], Some(R0));
            f.ret(R0);
        });
        let rep = rewrite_kernel_thunks(&pb.finish());
        assert_eq!(rep.guarded, 1);
        assert!(rep.untraceable.is_empty());
        let insts = &rep.program.funcs[0].insts;
        match &insts[2] {
            Inst::GuardIndCall {
                slot_base,
                slot_off,
                ..
            } => {
                // Guard uses &ops->handler (r1+8), not the local copy r2.
                assert_eq!(*slot_base, Operand::Reg(R1));
                assert_eq!(*slot_off, 8);
            }
            other => panic!("expected guard, got {other:?}"),
        }
        verify_program(&rep.program).unwrap();
    }

    #[test]
    fn intervening_work_is_fine_if_base_live() {
        let mut pb = ProgramBuilder::new("kernel");
        let sig = pb.sig("cb", 0);
        pb.define("f", 1, 0, |f| {
            f.load8(R2, R0, 0);
            f.add(R3, R2, 1i64); // unrelated work
            f.mov(R4, 7i64);
            f.call_ptr(R2, sig, &[], None);
            f.ret_void();
        });
        let rep = rewrite_kernel_thunks(&pb.finish());
        assert_eq!(rep.guarded, 1);
    }

    #[test]
    fn clobbered_base_is_untraceable() {
        let mut pb = ProgramBuilder::new("kernel");
        let sig = pb.sig("cb", 0);
        pb.define("f", 1, 0, |f| {
            f.load8(R2, R0, 0);
            f.mov(R0, 0i64); // clobber the base register
            f.call_ptr(R2, sig, &[], None);
            f.ret_void();
        });
        let rep = rewrite_kernel_thunks(&pb.finish());
        assert_eq!(rep.guarded, 0);
        assert_eq!(rep.untraceable, vec![("f".to_string(), 2)]);
    }

    #[test]
    fn pointer_from_argument_is_untraceable() {
        // The pointer value originates in another function (§4.1's 51
        // manually-verified cases).
        let mut pb = ProgramBuilder::new("kernel");
        let sig = pb.sig("cb", 0);
        pb.define("f", 1, 0, |f| {
            f.call_ptr(R0, sig, &[], None);
            f.ret_void();
        });
        let rep = rewrite_kernel_thunks(&pb.finish());
        assert_eq!(rep.guarded, 0);
        assert_eq!(rep.untraceable.len(), 1);
    }

    #[test]
    fn trace_does_not_cross_block_boundaries() {
        let mut pb = ProgramBuilder::new("kernel");
        let sig = pb.sig("cb", 0);
        pb.define("f", 2, 0, |f| {
            let join = f.label();
            f.load8(R2, R0, 0);
            f.br(Cond::Eq, R1, 0i64, join);
            f.load8(R2, R0, 8);
            f.bind(join);
            // r2 differs depending on path; conservative analysis bails.
            f.call_ptr(R2, sig, &[], None);
            f.ret_void();
        });
        let rep = rewrite_kernel_thunks(&pb.finish());
        assert_eq!(rep.guarded, 0);
        assert_eq!(rep.untraceable.len(), 1);
    }

    #[test]
    fn narrow_load_is_not_a_function_pointer() {
        let mut pb = ProgramBuilder::new("kernel");
        let sig = pb.sig("cb", 0);
        pb.define("f", 1, 0, |f| {
            f.load(R2, R0, 0, Width::B4);
            f.call_ptr(R2, sig, &[], None);
            f.ret_void();
        });
        let rep = rewrite_kernel_thunks(&pb.finish());
        assert_eq!(rep.guarded, 0);
        assert_eq!(rep.untraceable.len(), 1);
    }

    #[test]
    fn multiple_sites_all_processed() {
        let mut pb = ProgramBuilder::new("kernel");
        let sig = pb.sig("cb", 0);
        pb.define("f", 1, 0, |f| {
            f.load8(R2, R0, 0);
            f.call_ptr(R2, sig, &[], None);
            f.load8(R3, R0, 8);
            f.call_ptr(R3, sig, &[], None);
            f.ret_void();
        });
        let rep = rewrite_kernel_thunks(&pb.finish());
        assert_eq!(rep.guarded, 2);
        verify_program(&rep.program).unwrap();
    }
}
