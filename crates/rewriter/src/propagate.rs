//! Annotation propagation (§4.2).
//!
//! Annotations live on function-pointer *types* (e.g.
//! `net_device_ops.ndo_start_xmit`) and on kernel prototypes. A module
//! function like `myxmit` acquires its annotations from the type it is
//! assigned to — along initializations, assignments, and argument passing
//! (recorded as [`SigAssignment`] facts by the module builder). A function
//! reached from several sources must receive *exactly the same*
//! annotation set; a conflict is a compile-time error.
//!
//! [`SigAssignment`]: lxfi_machine::program::SigAssignment

use std::collections::HashMap;

use lxfi_core::iface::FnDecl;
use lxfi_machine::program::{FuncId, Program};

/// The annotated interface surface the module is compiled against.
#[derive(Debug, Default)]
pub struct InterfaceSpec {
    /// Function-pointer type name → annotated declaration.
    pub sig_decls: HashMap<String, FnDecl>,
    /// Explicit annotations on module functions (rare; most module
    /// functions get theirs by propagation).
    pub fn_decls: HashMap<String, FnDecl>,
}

impl InterfaceSpec {
    /// Creates an empty spec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a function-pointer type declaration.
    pub fn declare_sig(&mut self, decl: FnDecl) {
        self.sig_decls.insert(decl.name.clone(), decl);
    }

    /// Adds an explicit module-function declaration.
    pub fn declare_fn(&mut self, decl: FnDecl) {
        self.fn_decls.insert(decl.name.clone(), decl);
    }
}

/// Propagation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropagateError {
    /// A function acquired two different annotation sets.
    Conflict {
        /// Module function name.
        func: String,
        /// First source and its canonical annotation.
        first: (String, String),
        /// Second source and its conflicting canonical annotation.
        second: (String, String),
    },
    /// A `SigAssignment` references a type the spec does not declare.
    UnknownSig {
        /// Module function name.
        func: String,
        /// Signature name.
        sig: String,
    },
}

impl std::fmt::Display for PropagateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PropagateError::Conflict {
                func,
                first,
                second,
            } => write!(
                f,
                "function `{func}` has conflicting annotations: from {} `{}` vs from {} `{}`",
                first.0, first.1, second.0, second.1
            ),
            PropagateError::UnknownSig { func, sig } => {
                write!(f, "function `{func}` assigned to unannotated type `{sig}`")
            }
        }
    }
}

impl std::error::Error for PropagateError {}

/// Computes the final annotation set for every module function.
///
/// The result is order-independent: all sources are gathered first, then
/// checked pairwise for canonical equality (§4.2: "LXFI verifies that
/// these annotations are exactly the same").
pub fn propagate(
    program: &Program,
    spec: &InterfaceSpec,
) -> Result<HashMap<FuncId, FnDecl>, PropagateError> {
    // func → [(source description, decl)]
    let mut sources: HashMap<FuncId, Vec<(String, FnDecl)>> = HashMap::new();

    for (id, f) in program.funcs.iter().enumerate() {
        if let Some(d) = spec.fn_decls.get(&f.name) {
            sources
                .entry(FuncId(id as u32))
                .or_default()
                .push((format!("explicit annotation on `{}`", f.name), d.clone()));
        }
    }

    let mut assignments = program.sig_assignments.clone();
    // Deterministic order regardless of recording order.
    assignments.sort_by_key(|a| (a.func, a.sig.0));
    for a in &assignments {
        let fname = &program.funcs[a.func.0 as usize].name;
        let sname = &program.sigs[a.sig.0 as usize].name;
        let d = spec
            .sig_decls
            .get(sname)
            .ok_or_else(|| PropagateError::UnknownSig {
                func: fname.clone(),
                sig: sname.clone(),
            })?;
        sources
            .entry(a.func)
            .or_default()
            .push((format!("pointer type `{sname}`"), d.clone()));
    }

    let mut out = HashMap::new();
    for (func, srcs) in sources {
        let fname = &program.funcs[func.0 as usize].name;
        let (first_src, first) = &srcs[0];
        for (src, d) in &srcs[1..] {
            if d.ann.canonical() != first.ann.canonical() {
                return Err(PropagateError::Conflict {
                    func: fname.clone(),
                    first: (first_src.clone(), first.ann.canonical()),
                    second: (src.clone(), d.ann.canonical()),
                });
            }
        }
        // The function inherits the declaration with its own name.
        let mut decl = first.clone();
        decl.name = fname.clone();
        out.insert(func, decl);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lxfi_annotations::parse_fn_annotations;
    use lxfi_core::iface::Param;
    use lxfi_machine::builder::ProgramBuilder;

    fn decl(name: &str, ann: &str) -> FnDecl {
        FnDecl::new(
            name,
            vec![
                Param::ptr("skb", "sk_buff"),
                Param::ptr("dev", "net_device"),
            ],
            parse_fn_annotations(ann).unwrap(),
        )
    }

    #[test]
    fn function_inherits_pointer_type_annotation() {
        let mut pb = ProgramBuilder::new("e1000");
        let sig = pb.sig("ndo_start_xmit", 2);
        let f = pb.define("myxmit", 2, 0, |f| f.ret_void());
        pb.assign_sig(f, sig);
        let p = pb.finish();

        let mut spec = InterfaceSpec::new();
        spec.declare_sig(decl(
            "ndo_start_xmit",
            "principal(dev) pre(transfer(skb_caps(skb)))",
        ));
        let map = propagate(&p, &spec).unwrap();
        let d = &map[&f];
        assert_eq!(d.name, "myxmit");
        assert!(d.ann.canonical().contains("skb_caps"));
    }

    #[test]
    fn matching_sources_are_accepted() {
        let mut pb = ProgramBuilder::new("m");
        let s1 = pb.sig("tx_a", 2);
        let s2 = pb.sig("tx_b", 2);
        let f = pb.define("myxmit", 2, 0, |f| f.ret_void());
        pb.assign_sig(f, s1);
        pb.assign_sig(f, s2);
        let p = pb.finish();
        let mut spec = InterfaceSpec::new();
        spec.declare_sig(decl("tx_a", "pre(transfer(skb_caps(skb)))"));
        spec.declare_sig(decl("tx_b", "pre(transfer(skb_caps(skb)))"));
        assert!(propagate(&p, &spec).is_ok());
    }

    #[test]
    fn conflicting_sources_are_rejected() {
        let mut pb = ProgramBuilder::new("m");
        let s1 = pb.sig("tx_a", 2);
        let s2 = pb.sig("tx_b", 2);
        let f = pb.define("myxmit", 2, 0, |f| f.ret_void());
        pb.assign_sig(f, s1);
        pb.assign_sig(f, s2);
        let p = pb.finish();
        let mut spec = InterfaceSpec::new();
        spec.declare_sig(decl("tx_a", "pre(transfer(skb_caps(skb)))"));
        spec.declare_sig(decl("tx_b", "pre(copy(skb_caps(skb)))"));
        let err = propagate(&p, &spec).unwrap_err();
        assert!(matches!(err, PropagateError::Conflict { .. }));
    }

    #[test]
    fn explicit_and_propagated_must_match() {
        let mut pb = ProgramBuilder::new("m");
        let s1 = pb.sig("tx_a", 2);
        let f = pb.define("myxmit", 2, 0, |f| f.ret_void());
        pb.assign_sig(f, s1);
        let p = pb.finish();
        let mut spec = InterfaceSpec::new();
        spec.declare_sig(decl("tx_a", "pre(transfer(skb_caps(skb)))"));
        spec.declare_fn(decl("myxmit", "pre(check(write, skb, 8))"));
        assert!(propagate(&p, &spec).is_err());
    }

    #[test]
    fn unknown_sig_is_an_error() {
        let mut pb = ProgramBuilder::new("m");
        let s1 = pb.sig("mystery_t", 2);
        let f = pb.define("g", 2, 0, |f| f.ret_void());
        pb.assign_sig(f, s1);
        let p = pb.finish();
        let err = propagate(&p, &InterfaceSpec::new()).unwrap_err();
        assert!(matches!(err, PropagateError::UnknownSig { .. }));
    }

    #[test]
    fn result_is_order_independent() {
        // Record assignments in both orders; same outcome.
        let build = |swap: bool| {
            let mut pb = ProgramBuilder::new("m");
            let s1 = pb.sig("tx_a", 2);
            let s2 = pb.sig("tx_b", 2);
            let f = pb.define("myxmit", 2, 0, |f| f.ret_void());
            if swap {
                pb.assign_sig(f, s2);
                pb.assign_sig(f, s1);
            } else {
                pb.assign_sig(f, s1);
                pb.assign_sig(f, s2);
            }
            (pb.finish(), f)
        };
        let mut spec = InterfaceSpec::new();
        spec.declare_sig(decl("tx_a", "pre(transfer(skb_caps(skb)))"));
        spec.declare_sig(decl("tx_b", "pre(transfer(skb_caps(skb)))"));
        let (p1, f1) = build(false);
        let (p2, f2) = build(true);
        let m1 = propagate(&p1, &spec).unwrap();
        let m2 = propagate(&p2, &spec).unwrap();
        assert_eq!(m1[&f1].ann.canonical(), m2[&f2].ann.canonical());
    }

    #[test]
    fn unannotated_functions_get_nothing() {
        let mut pb = ProgramBuilder::new("m");
        let f = pb.define("internal_helper", 0, 0, |f| f.ret_void());
        let p = pb.finish();
        let map = propagate(&p, &InterfaceSpec::new()).unwrap();
        assert!(!map.contains_key(&f));
    }
}
