//! Property tests for the capability tables and principal model.
//!
//! Both WRITE-table implementations — the interval index on the guard
//! hot path and the paper's 12-bit-masked slot baseline (§5) — are
//! checked against a naive `Vec<(Word, u64)>` reference model under
//! arbitrary grant/revoke sequences, including ranges whose end
//! arithmetic saturates near `Word::MAX`; the principal hierarchy
//! invariants of §3.1 are checked under random capability traffic.

use proptest::prelude::*;

use lxfi_core::caps::CapSet;
use lxfi_core::{LinearWriteTable, ModuleId, PrincipalId, RawCap, Runtime, ThreadId, WriteTable};

// ------------------------------------------------- WriteTable vs oracle

#[derive(Debug, Clone)]
enum WOp {
    Grant(u64, u64),
    Revoke(u64, u64),
    RevokeOverlapping(u64, u64),
}

fn arb_wop() -> impl Strategy<Value = WOp> {
    // Keep the address universe small so operations collide often, and
    // sizes up to 3 pages so multi-page intervals are exercised.
    let addr = 0x10_0000u64..0x10_4000;
    let size = prop_oneof![1u64..64, 64u64..5000, Just(12288u64)];
    prop_oneof![
        (addr.clone(), size.clone()).prop_map(|(a, s)| WOp::Grant(a, s)),
        (addr.clone(), size.clone()).prop_map(|(a, s)| WOp::Revoke(a, s)),
        (addr, size).prop_map(|(a, s)| WOp::RevokeOverlapping(a, s)),
    ]
}

/// Ops drawn from the last two pages of the address space, where end
/// arithmetic saturates (sizes deliberately overflow `Word::MAX`).
fn arb_wop_near_max() -> impl Strategy<Value = WOp> {
    let addr = prop_oneof![
        u64::MAX - 0x2000..u64::MAX,
        Just(u64::MAX),
        Just(u64::MAX - 1),
    ];
    let size = prop_oneof![1u64..64, 64u64..5000, Just(u64::MAX), Just(u64::MAX / 2)];
    prop_oneof![
        (addr.clone(), size.clone()).prop_map(|(a, s)| WOp::Grant(a, s)),
        (addr.clone(), size.clone()).prop_map(|(a, s)| WOp::Revoke(a, s)),
        (addr, size).prop_map(|(a, s)| WOp::RevokeOverlapping(a, s)),
    ]
}

/// Naive reference model: a plain `Vec<(Word, u64)>` of granted ranges
/// with the documented saturating/zero-size semantics spelled out
/// longhand. Both WRITE-table implementations (the interval index and
/// the masked-slot baseline) are property-checked against it.
#[derive(Default)]
struct Oracle {
    ranges: Vec<(u64, u64)>,
}

impl Oracle {
    /// The documented clamp: an exclusive end saturates at `Word::MAX`.
    fn clamp(a: u64, s: u64) -> u64 {
        s.min(u64::MAX - a)
    }
    fn grant(&mut self, a: u64, s: u64) {
        let s = Self::clamp(a, s);
        if s > 0 && !self.ranges.contains(&(a, s)) {
            self.ranges.push((a, s));
        }
    }
    fn revoke(&mut self, a: u64, s: u64) -> bool {
        let s = Self::clamp(a, s);
        let before = self.ranges.len();
        self.ranges.retain(|&(x, y)| !(x == a && y == s && s > 0));
        self.ranges.len() != before
    }
    fn revoke_overlapping(&mut self, a: u64, s: u64) -> usize {
        if s == 0 {
            return 0;
        }
        let end = a.saturating_add(s);
        let before = self.ranges.len();
        self.ranges.retain(|&(x, y)| !(x < end && a < x + y));
        before - self.ranges.len()
    }
    fn covers(&self, a: u64, l: u64) -> bool {
        if l == 0 {
            return true;
        }
        let Some(end) = a.checked_add(l) else {
            return false;
        };
        self.ranges.iter().any(|&(x, y)| x <= a && end <= x + y)
    }
    fn overlaps(&self, a: u64, l: u64) -> bool {
        if l == 0 {
            return false;
        }
        let end = a.saturating_add(l);
        self.ranges.iter().any(|&(x, y)| x < end && a < x + y)
    }
    fn owns_exact(&self, a: u64, s: u64) -> bool {
        let s = Self::clamp(a, s);
        s > 0 && self.ranges.contains(&(a, s))
    }
}

/// Drives both table implementations and the oracle through one op
/// sequence, checking agreement at every probe.
fn check_against_oracle(ops: &[WOp], probes: &[(u64, u64)]) {
    let mut t = WriteTable::new();
    let mut lin = LinearWriteTable::new();
    let mut o = Oracle::default();
    for op in ops {
        match *op {
            WOp::Grant(a, s) => {
                t.grant(a, s);
                lin.grant(a, s);
                o.grant(a, s);
            }
            WOp::Revoke(a, s) => {
                let got = t.revoke(a, s);
                assert_eq!(lin.revoke(a, s), got);
                assert_eq!(o.revoke(a, s), got, "revoke ({:#x}, {})", a, s);
            }
            WOp::RevokeOverlapping(a, s) => {
                let got = t.revoke_overlapping(a, s);
                assert_eq!(lin.revoke_overlapping(a, s), got);
                assert_eq!(
                    o.revoke_overlapping(a, s),
                    got,
                    "revoke_overlapping ({:#x}, {})",
                    a,
                    s
                );
            }
        }
    }
    for &(a, l) in probes {
        assert_eq!(t.covers(a, l), o.covers(a, l), "covers ({:#x}, {})", a, l);
        assert_eq!(
            lin.covers(a, l),
            o.covers(a, l),
            "linear covers ({:#x}, {})",
            a,
            l
        );
        assert_eq!(
            t.overlaps(a, l),
            o.overlaps(a, l),
            "overlaps ({:#x}, {})",
            a,
            l
        );
        assert_eq!(
            lin.overlaps(a, l),
            o.overlaps(a, l),
            "linear overlaps ({:#x}, {})",
            a,
            l
        );
        assert_eq!(
            t.owns_exact(a, l),
            o.owns_exact(a, l),
            "owns_exact ({:#x}, {})",
            a,
            l
        );
        // covering() must return an interval that actually covers.
        if let Some((s, e)) = t.covering(a, l) {
            assert!(s <= a && a + l <= e, "covering ({:#x}, {})", a, l);
        } else {
            assert!(l == 0 || !o.covers(a, l));
        }
    }
    assert_eq!(t.len(), o.ranges.len());
    assert_eq!(lin.len(), o.ranges.len());
    let mut from_iter: Vec<_> = t.iter().collect();
    let mut expect = o.ranges.clone();
    from_iter.sort_unstable();
    expect.sort_unstable();
    assert_eq!(from_iter, expect);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both WRITE-table implementations agree with the naive interval
    /// reference model on arbitrary operation sequences and probes.
    #[test]
    fn write_table_matches_oracle(
        ops in proptest::collection::vec(arb_wop(), 1..40),
        probes in proptest::collection::vec((0x10_0000u64..0x10_4100, 1u64..256), 20),
    ) {
        check_against_oracle(&ops, &probes);
    }

    /// Same agreement where every end computation saturates: addresses
    /// within two pages of `Word::MAX` and sizes up to `Word::MAX`
    /// (panicked in debug builds before the overflow-discipline fix).
    #[test]
    fn write_table_matches_oracle_near_max(
        ops in proptest::collection::vec(arb_wop_near_max(), 1..40),
        probes in proptest::collection::vec(
            (u64::MAX - 0x2100..u64::MAX, 1u64..256), 20),
        overflow_probes in proptest::collection::vec(
            (u64::MAX - 0x100..u64::MAX, 0x200u64..u64::MAX), 4),
    ) {
        check_against_oracle(&ops, &probes);
        check_against_oracle(&ops, &overflow_probes);
    }

    /// Every address inside a granted range is covered; every address
    /// outside all ranges is not.
    #[test]
    fn write_coverage_is_exact(addr in 0x20_0000u64..0x20_1000, size in 1u64..8192) {
        let mut t = WriteTable::new();
        t.grant(addr, size);
        for probe in [addr, addr + size / 2, addr + size - 1] {
            prop_assert!(t.covers(probe, 1));
        }
        prop_assert!(t.covers(addr, size));
        prop_assert!(!t.covers(addr, size + 1));
        if addr > 0 {
            prop_assert!(!t.covers(addr - 1, 1));
        }
        prop_assert!(!t.covers(addr + size, 1));
    }
}

// ------------------------------------------------ principal hierarchy

#[derive(Debug, Clone)]
enum POp {
    GrantInstance(u8, u64),
    GrantShared(u64),
    RevokeEverywhere(u64),
}

fn arb_pop() -> impl Strategy<Value = POp> {
    let target = 0xf000u64..0xf040;
    prop_oneof![
        (0u8..3, target.clone()).prop_map(|(i, t)| POp::GrantInstance(i, t)),
        target.clone().prop_map(POp::GrantShared),
        target.prop_map(POp::RevokeEverywhere),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// §3.1 invariants under arbitrary capability traffic:
    /// - instances see their own caps plus shared caps, never a sibling's;
    /// - the global principal sees the union;
    /// - transfer-style revocation leaves no copies anywhere.
    #[test]
    fn principal_hierarchy_invariants(ops in proptest::collection::vec(arb_pop(), 1..60)) {
        let mut rt = Runtime::new();
        let m = rt.register_module("m");
        rt.register_thread(ThreadId(0), 0xffff_9000_0000_0000, 0x4000);
        let insts: Vec<PrincipalId> =
            (0..3).map(|i| rt.principal_for_name(m, 0x9000 + i * 0x100)).collect();
        // Mirror state: per-instance call sets + shared set.
        let mut own = [std::collections::HashSet::new(),
                       std::collections::HashSet::new(),
                       std::collections::HashSet::new()];
        let mut shared = std::collections::HashSet::new();

        for op in &ops {
            match *op {
                POp::GrantInstance(i, t) => {
                    let i = (i as usize) % 3;
                    rt.grant(insts[i], RawCap::call(t));
                    own[i].insert(t);
                }
                POp::GrantShared(t) => {
                    let sp = rt.shared_principal(m);
                    rt.grant(sp, RawCap::call(t));
                    shared.insert(t);
                }
                POp::RevokeEverywhere(t) => {
                    rt.revoke_everywhere(RawCap::call(t));
                    for o in own.iter_mut() { o.remove(&t); }
                    shared.remove(&t);
                }
            }
        }

        for t in 0xf000u64..0xf040 {
            let cap = RawCap::call(t);
            for i in 0..3 {
                let expected = own[i].contains(&t) || shared.contains(&t);
                prop_assert_eq!(rt.owns(insts[i], cap), expected,
                    "instance {} cap {:#x}", i, t);
            }
            let union = own.iter().any(|o| o.contains(&t)) || shared.contains(&t);
            prop_assert_eq!(rt.owns(rt.global_principal(m), cap), union,
                "global cap {:#x}", t);
        }
    }

    /// Writer-set tracking never reports "clean" for a granule some
    /// principal can still write (no false negatives, §5).
    #[test]
    fn writer_map_no_false_negatives(
        grants in proptest::collection::vec((0x30_0000u64..0x30_2000, 1u64..512), 1..20),
        zeroes in proptest::collection::vec((0x30_0000u64..0x30_2000, 1u64..512), 0..10),
    ) {
        let mut rt = Runtime::new();
        let m = rt.register_module("m");
        let p = rt.principal_for_name(m, 0x9000);
        for &(a, s) in &grants {
            rt.grant(p, RawCap::write(a, s));
        }
        for &(a, s) in &zeroes {
            rt.note_zeroed(a, s);
        }
        // Any address still covered by a held capability must be dirty.
        for &(a, s) in &grants {
            if rt.owns(p, RawCap::write(a, s)) {
                prop_assert!(!rt.writer_clean(a), "clean bit over live WRITE cap at {a:#x}");
                prop_assert!(!rt.writer_clean(a + s - 1));
            }
        }
    }

    /// CapSet grant/revoke round trip for every capability kind.
    #[test]
    fn capset_roundtrip(t in 0u32..4, addr: u64, size in 1u64..4096) {
        let mut s = CapSet::new();
        let cap = match t {
            0 => RawCap::write(addr.min(u64::MAX - size), size),
            1 => RawCap::call(addr),
            _ => RawCap::reference(lxfi_core::RefTypeId(t), addr),
        };
        prop_assert!(!s.owns(cap));
        s.grant(cap);
        prop_assert!(s.owns(cap));
        prop_assert!(s.revoke(cap));
        prop_assert!(!s.owns(cap));
        prop_assert!(!s.revoke(cap));
        prop_assert!(s.is_empty());
    }
}

// ------------------------------------------------------- shadow stacks

proptest! {
    /// Balanced wrapper nesting always restores the outer context; any
    /// token mismatch is detected.
    #[test]
    fn shadow_stack_balanced_nesting(depths in proptest::collection::vec(0u32..4, 1..12)) {
        let mut rt = Runtime::new();
        let m = rt.register_module("m");
        rt.register_thread(ThreadId(0), 0xffff_9000_0000_0000, 0x4000);
        let t = ThreadId(0);
        let mut tokens = Vec::new();
        for &d in &depths {
            let p = rt.principal_for_name(m, 0x9000 + d as u64 * 8);
            tokens.push(rt.wrapper_enter(t, Some((m, p))));
        }
        for tok in tokens.into_iter().rev() {
            rt.wrapper_exit(t, tok).unwrap();
        }
        prop_assert_eq!(rt.current(t), None);
    }

    /// Exiting with the wrong token is always a violation.
    #[test]
    fn shadow_stack_detects_wrong_token(delta in 1u64..1000) {
        let mut rt = Runtime::new();
        let m = rt.register_module("m");
        rt.register_thread(ThreadId(0), 0xffff_9000_0000_0000, 0x4000);
        let p = rt.principal_for_name(m, 0x9000);
        let t = ThreadId(0);
        let tok = rt.wrapper_enter(t, Some((m, p)));
        prop_assert!(rt.wrapper_exit(t, tok.wrapping_add(delta)).is_err());
    }
}

// Silence an unused-import warning when ModuleId is only used in types.
#[allow(dead_code)]
fn _type_uses(_: ModuleId) {}
