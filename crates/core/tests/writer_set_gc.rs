//! Writer-set GC boundedness: a long-running grant/revoke loop interns
//! new writer-set combinations forever, but the refcounting interner
//! frees unreferenced sets and recycles their slots, so live-set count
//! and slot capacity must stay bounded while the allocation counter
//! keeps growing. Before the GC landed, `set_count` grew without bound
//! in exactly this workload (ROADMAP "writer-set spill discipline").

use lxfi_core::{RawCap, Runtime};

const NPRINC: u64 = 16;
const ROUNDS: u64 = 4000;

fn churn(rt: &mut Runtime, sharded: bool) {
    let m = rt.register_module("gc");
    if sharded {
        rt.set_shard_boundaries(vec![0x50_0400, 0x50_0800, 0x50_0c00]);
    }
    let ps: Vec<_> = (0..NPRINC)
        .map(|i| rt.principal_for_name(m, 0x9000 + i * 8))
        .collect();
    for round in 0..ROUNDS {
        // Three principals in a rotating, round-dependent combination
        // grant overlapping windows over a small region, then revoke.
        // Overlaps force set unions ({a}, {a,b}, {a,b,c}, …) that are
        // garbage one round later.
        let trio = [
            ps[(round % NPRINC) as usize],
            ps[((round / NPRINC + round + 1) % NPRINC) as usize],
            ps[((round / (NPRINC * NPRINC) + round + 2) % NPRINC) as usize],
        ];
        let base = 0x50_0000 + (round % 64) * 0x40;
        for &p in &trio {
            rt.grant(p, RawCap::write(base, 0x100));
        }
        rt.check_index_invariants();
        for &p in &trio {
            rt.revoke(p, RawCap::write(base, 0x100));
        }
    }
    rt.check_index_invariants();
}

fn assert_bounded(rt: &Runtime) {
    assert!(
        rt.index_sets_ever_interned() > 2 * ROUNDS,
        "churn should intern new combinations every round: only {}",
        rt.index_sets_ever_interned()
    );
    assert_eq!(
        rt.index_set_count(),
        1,
        "everything revoked: only the pinned empty set stays live"
    );
    assert!(
        rt.index_set_slot_capacity() <= 64,
        "slot capacity is the high-water mark of simultaneously live \
         sets, not of allocations: {}",
        rt.index_set_slot_capacity()
    );
    assert_eq!(rt.index_interval_count(), 0);
    // The stats gauges surface the same pair.
    assert_eq!(rt.stats.writer_sets_live, rt.index_set_count() as u64);
    assert_eq!(rt.stats.writer_sets_ever, rt.index_sets_ever_interned());
}

#[test]
fn interned_sets_stay_bounded_under_churn() {
    let mut rt = Runtime::new();
    churn(&mut rt, false);
    assert_bounded(&rt);
}

#[test]
fn interned_sets_stay_bounded_under_churn_sharded() {
    let mut rt = Runtime::new();
    churn(&mut rt, true);
    assert_bounded(&rt);
}
