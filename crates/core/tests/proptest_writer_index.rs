//! Property tests for the reverse writer index (§5 scaling).
//!
//! Three implementations are driven through identical random
//! grant/revoke/transfer sequences and must agree on `writers_of` at
//! every probe:
//!
//! 1. the live [`Runtime`] (whose `WriterIndex` is maintained
//!    incrementally on every capability mutation),
//! 2. the retired global principal walk (`Runtime::writers_of_linear` /
//!    [`LinearWriterIndex`]),
//! 3. a naive model: one `Vec<(addr, size)>` of granted ranges per
//!    principal, probed longhand with the documented saturating
//!    semantics.
//!
//! Sequences include exact revokes of still-overlapped grants (the
//! residual-coverage reinstatement path), `revoke_everywhere` transfers,
//! `kfree`-style overlapping revocation, and ranges whose end arithmetic
//! saturates near `Word::MAX`. The index's structural invariants
//! (sorted disjoint intervals inside their shard bounds, interned
//! non-empty refcounted sets, full within-shard coalescing) are
//! asserted after every operation.
//!
//! Every sequence additionally runs under **sharded** writer indexes —
//! proptest-chosen boundaries inside the op universe plus fixed
//! near-`MAX` boundaries — since shard-boundary splits must never change
//! a `writers_of` answer.

use proptest::prelude::*;

use lxfi_core::{LinearWriterIndex, PrincipalId, RawCap, Runtime};

const NPRINC: usize = 5;

#[derive(Debug, Clone)]
enum Op {
    Grant(usize, u64, u64),
    Revoke(usize, u64, u64),
    RevokeEverywhere(u64, u64),
    RevokeOverlappingEverywhere(u64, u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // A small address universe so grants collide and overlap often, with
    // sizes up to several pages so intervals split and merge.
    let princ = 0usize..NPRINC;
    let addr = 0x10_0000u64..0x10_2000;
    let size = prop_oneof![1u64..64, 64u64..2000, Just(8192u64)];
    prop_oneof![
        (princ.clone(), addr.clone(), size.clone()).prop_map(|(p, a, s)| Op::Grant(p, a, s)),
        (princ, addr.clone(), size.clone()).prop_map(|(p, a, s)| Op::Revoke(p, a, s)),
        (addr.clone(), size.clone()).prop_map(|(a, s)| Op::RevokeEverywhere(a, s)),
        (addr, size).prop_map(|(a, s)| Op::RevokeOverlappingEverywhere(a, s)),
    ]
}

/// Ops near the top of the address space, where end arithmetic saturates.
fn arb_op_near_max() -> impl Strategy<Value = Op> {
    let princ = 0usize..NPRINC;
    let addr = prop_oneof![
        u64::MAX - 0x1000..u64::MAX,
        Just(u64::MAX),
        Just(u64::MAX - 1),
        Just(u64::MAX - 8),
    ];
    let size = prop_oneof![1u64..64, Just(u64::MAX), Just(u64::MAX / 2), Just(4096u64)];
    prop_oneof![
        (princ.clone(), addr.clone(), size.clone()).prop_map(|(p, a, s)| Op::Grant(p, a, s)),
        (princ, addr.clone(), size.clone()).prop_map(|(p, a, s)| Op::Revoke(p, a, s)),
        (addr.clone(), size.clone()).prop_map(|(a, s)| Op::RevokeEverywhere(a, s)),
        (addr, size).prop_map(|(a, s)| Op::RevokeOverlappingEverywhere(a, s)),
    ]
}

/// The naive model: per-principal granted ranges, probed longhand.
#[derive(Default)]
struct Naive {
    ranges: Vec<Vec<(u64, u64)>>,
}

impl Naive {
    fn new(n: usize) -> Self {
        Naive {
            ranges: vec![Vec::new(); n],
        }
    }
    fn clamp(a: u64, s: u64) -> u64 {
        s.min(u64::MAX - a)
    }
    fn grant(&mut self, p: usize, a: u64, s: u64) {
        let s = Self::clamp(a, s);
        if s > 0 && !self.ranges[p].contains(&(a, s)) {
            self.ranges[p].push((a, s));
        }
    }
    fn revoke(&mut self, p: usize, a: u64, s: u64) {
        let s = Self::clamp(a, s);
        self.ranges[p].retain(|&(x, y)| !(x == a && y == s && s > 0));
    }
    fn revoke_overlapping(&mut self, p: usize, a: u64, s: u64) {
        if s == 0 {
            return;
        }
        let end = a.saturating_add(s);
        self.ranges[p].retain(|&(x, y)| !(x < end && a < x + y));
    }
    /// Principals with a grant overlapping any byte of the 8-byte slot.
    fn writers_of(&self, addr: u64) -> Vec<PrincipalId> {
        let end = addr.saturating_add(8);
        (0..self.ranges.len())
            .filter(|&p| self.ranges[p].iter().any(|&(x, y)| x < end && addr < x + y))
            .map(|p| PrincipalId(p as u32))
            .collect()
    }
}

/// A runtime with `NPRINC` instance principals to mutate.
fn runtime_with_principals() -> (Runtime, Vec<PrincipalId>) {
    let mut rt = Runtime::new();
    let m = rt.register_module("pt");
    let princs: Vec<PrincipalId> = (0..NPRINC)
        .map(|i| rt.principal_for_name(m, 0x9000 + i as u64 * 8))
        .collect();
    (rt, princs)
}

/// Probe addresses worth checking after an op sequence: every op
/// boundary and its neighbors (where splits and saturation happen).
fn probe_points(ops: &[Op]) -> Vec<u64> {
    let mut probes = Vec::new();
    for op in ops {
        let (a, s) = match *op {
            Op::Grant(_, a, s)
            | Op::Revoke(_, a, s)
            | Op::RevokeEverywhere(a, s)
            | Op::RevokeOverlappingEverywhere(a, s) => (a, s),
        };
        let end = a.saturating_add(s.min(u64::MAX - a));
        for probe in [
            a,
            a.wrapping_sub(8),
            a.saturating_add(1),
            end.wrapping_sub(1),
            end.wrapping_sub(9),
            end,
        ] {
            probes.push(probe);
        }
    }
    probes
}

/// Drives the runtime (reverse index), the linear baseline, and the
/// naive model through one sequence, checking agreement at every step.
fn check_sequence(ops: &[Op]) {
    check_sequence_sharded(ops, Vec::new());
}

/// Like [`check_sequence`], but the runtime's writer index is sharded at
/// the given boundaries first.
fn check_sequence_sharded(ops: &[Op], boundaries: Vec<u64>) {
    let (mut rt, princs) = runtime_with_principals();
    rt.set_shard_boundaries(boundaries);
    let mut lin = LinearWriterIndex::new();
    let mut naive = Naive::new(NPRINC);
    // The linear baseline is indexed by raw PrincipalId; pre-size it so
    // writers_of compares over the same principal universe.
    for &p in &princs {
        lin.grant(p, 0, 0); // no-op grant, allocates the slot
    }

    for op in ops {
        match *op {
            Op::Grant(pi, a, s) => {
                rt.grant(princs[pi], RawCap::write(a, s));
                lin.grant(princs[pi], a, s);
                naive.grant(pi, a, s);
            }
            Op::Revoke(pi, a, s) => {
                rt.revoke(princs[pi], RawCap::write(a, s));
                lin.revoke(princs[pi], a, s);
                naive.revoke(pi, a, s);
            }
            Op::RevokeEverywhere(a, s) => {
                rt.revoke_everywhere(RawCap::write(a, s));
                for (pi, &p) in princs.iter().enumerate() {
                    lin.revoke(p, a, s);
                    naive.revoke(pi, a, s);
                }
            }
            Op::RevokeOverlappingEverywhere(a, s) => {
                rt.revoke_write_overlapping_everywhere(a, s);
                for (pi, &p) in princs.iter().enumerate() {
                    lin.revoke_overlapping(p, a, s);
                    naive.revoke_overlapping(pi, a, s);
                }
            }
        }
        rt.check_index_invariants();
    }

    // The instance principals occupy ids 2.. (after shared + global);
    // translate the naive model's dense indices for comparison.
    let id_of = |pi: usize| princs[pi];
    for probe in probe_points(ops) {
        let expect: Vec<PrincipalId> = naive
            .writers_of(probe)
            .iter()
            .map(|p| id_of(p.0 as usize))
            .collect();
        let got = rt.writers_of(probe);
        assert_eq!(got, expect, "index writers_of({probe:#x})");
        let linear_rt = rt.writers_of_linear(probe);
        assert_eq!(linear_rt, expect, "runtime linear walk ({probe:#x})");
        let linear = lin.writers_of(probe, 8);
        assert_eq!(linear, expect, "LinearWriterIndex ({probe:#x})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Index, linear walk, and naive model agree under random traffic.
    #[test]
    fn writer_index_matches_naive_walk(ops in proptest::collection::vec(arb_op(), 1..40)) {
        check_sequence(&ops);
    }

    /// Same agreement where end arithmetic saturates at `Word::MAX`.
    #[test]
    fn writer_index_matches_near_max(ops in proptest::collection::vec(arb_op_near_max(), 1..30)) {
        check_sequence(&ops);
    }

    /// Mixed universes: low-address and saturating ops interleaved.
    #[test]
    fn writer_index_matches_mixed(
        low in proptest::collection::vec(arb_op(), 1..20),
        high in proptest::collection::vec(arb_op_near_max(), 1..20),
    ) {
        let mut ops = low;
        ops.extend(high);
        check_sequence(&ops);
    }

    /// Sharded at proptest-chosen boundaries inside (and around) the op
    /// universe: boundary splits never change an answer.
    #[test]
    fn writer_index_matches_sharded(
        ops in proptest::collection::vec(arb_op(), 1..40),
        boundaries in proptest::collection::vec(0x10_0000u64..0x10_2100, 1..5),
    ) {
        check_sequence_sharded(&ops, boundaries);
    }

    /// Sharded agreement where end arithmetic saturates: boundaries in
    /// the last pages of the address space, including one one-byte-short
    /// of `Word::MAX`.
    #[test]
    fn writer_index_matches_sharded_near_max(
        ops in proptest::collection::vec(arb_op_near_max(), 1..30),
    ) {
        check_sequence_sharded(
            &ops,
            vec![u64::MAX - 0x1100, u64::MAX - 0x800, u64::MAX - 0x100, u64::MAX - 1],
        );
    }

    /// Mixed universes over region-style shards (one boundary between
    /// the universes, several inside each).
    #[test]
    fn writer_index_matches_sharded_mixed(
        low in proptest::collection::vec(arb_op(), 1..20),
        high in proptest::collection::vec(arb_op_near_max(), 1..20),
    ) {
        let mut ops = low;
        ops.extend(high);
        check_sequence_sharded(
            &ops,
            vec![0x10_0800, 0x10_1800, 0x20_0000, u64::MAX - 0x900],
        );
    }
}
