//! Concurrent soundness of the single-holder grant transfer.
//!
//! The fast path ([`RuntimeCore::transfer_write`]) moves a WRITE grant
//! from its one indexed holder to the destination with a single shard
//! substitution splice instead of the every-principal revoke sweep. Two
//! invariants must survive real concurrency:
//!
//! - **No stale authorization.** Once a transfer completes
//!   (happens-before established by barriers), the source principal's
//!   next guard on the moved coverage must deny even if its epoch cache
//!   was hot — the fast path must bump exactly the epochs the sweep
//!   would have.
//! - **Revoke/transfer races converge.** A transfer racing a concurrent
//!   `revoke_everywhere` of the same capability may resolve either way,
//!   but never to a world where the source still holds the grant, and
//!   always to a world where the reverse index, the linear walk, and the
//!   capability tables agree exactly.

#![cfg(not(miri))] // spawns OS threads and relies on real scheduling

use std::sync::{Arc, Barrier};
use std::thread;

use lxfi_core::{GuardHandle, RawCap, Runtime, RuntimeCore};

/// Phased fast-path check: warm the source's guard cache, transfer on
/// another thread, and require the very next guard to deny — across
/// many rounds bouncing the grant between two principals.
#[test]
fn transfer_invalidates_hot_source_caches() {
    const ROUNDS: usize = 100;
    let mut rt = Runtime::with_shard_boundaries(vec![0x10_0000, 0x20_0000]);
    let m = rt.register_module("xfer");
    let a = rt.principal_for_name(m, 0x9000);
    let b = rt.principal_for_name(m, 0x9008);
    let cap = RawCap::write(0x10_0000, 0x100);
    rt.grant(a, cap);
    let core = rt.share();

    let barrier = Arc::new(Barrier::new(2));
    let mover = {
        let core = Arc::clone(&core);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            let mut fast = 0u64;
            for round in 0..ROUNDS {
                barrier.wait(); // caches are hot
                let (src, dst) = if round % 2 == 0 { (a, b) } else { (b, a) };
                let _ = src;
                let (was_fast, bumps) = core.transfer_write(cap, Some(dst));
                assert!(bumps > 0, "moving a held grant must bump epochs");
                fast += u64::from(was_fast);
                barrier.wait(); // transfer is visible
            }
            fast
        })
    };

    let mut ha: GuardHandle = GuardHandle::new(Arc::clone(&core));
    ha.set_current(Some((m, a)));
    let mut hb: GuardHandle = GuardHandle::new(Arc::clone(&core));
    hb.set_current(Some((m, b)));
    for round in 0..ROUNDS {
        // Warm the current holder's cache on the moved range.
        let (hot, cold, holder_after) = if round % 2 == 0 {
            (&mut ha, &mut hb, b)
        } else {
            (&mut hb, &mut ha, a)
        };
        hot.check_write(cap.addr, 8).expect("holder's own grant");
        barrier.wait(); // transfer runs
        barrier.wait(); // transfer done
        hot.check_write(cap.addr, 8)
            .expect_err("source must deny right after the transfer");
        cold.check_write(cap.addr, 8)
            .expect("destination must hold the moved grant");
        assert!(core.owns(holder_after, cap));
    }
    let fast = mover.join().expect("mover thread");
    assert_eq!(
        fast, ROUNDS as u64,
        "single-holder rounds must all take the fast path"
    );
    core.check_index_invariants();
}

/// Barrier-phased race: every round, one thread transfers the grant to
/// `b` while another revokes it everywhere. After both quiesce the
/// world must be consistent — `a` never retains the grant, `b` holds it
/// iff the index says so, and the sharded index matches the linear
/// walk exactly.
#[test]
fn transfer_racing_revoke_converges() {
    const ROUNDS: usize = 200;
    let mut rt = Runtime::with_shard_boundaries(vec![0x10_0000, 0x20_0000]);
    let m = rt.register_module("race");
    let a = rt.principal_for_name(m, 0x9000);
    let b = rt.principal_for_name(m, 0x9008);
    let cap = RawCap::write(0x10_0000, 0x100);
    let core = rt.share();

    let barrier = Arc::new(Barrier::new(3));
    let xfer = {
        let core = Arc::clone(&core);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            for _ in 0..ROUNDS {
                barrier.wait(); // setup done: a holds the grant
                core.transfer_write(cap, Some(b));
                barrier.wait(); // both ops done
                barrier.wait(); // assertions done
            }
        })
    };
    let revoker = {
        let core = Arc::clone(&core);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            for _ in 0..ROUNDS {
                barrier.wait();
                core.revoke_everywhere(cap);
                barrier.wait();
                barrier.wait();
            }
        })
    };

    for _ in 0..ROUNDS {
        core.grant(a, cap);
        barrier.wait(); // release both racers
        barrier.wait(); // both finished
        assert!(!core.owns(a, cap), "source retained a transferred grant");
        let b_holds = core.owns(b, cap);
        let indexed = writers_of(&core, cap.addr);
        let linear = linear_writers_of(&core, cap.addr);
        assert_eq!(indexed, linear, "index and linear walk diverged");
        assert_eq!(
            indexed.contains(&b),
            b_holds,
            "index coverage must match b's table"
        );
        assert!(!indexed.contains(&a));
        core.check_index_invariants();
        // Reset for the next round.
        core.revoke_everywhere(cap);
        barrier.wait();
    }
    xfer.join().expect("transfer thread");
    revoker.join().expect("revoker thread");
}

fn writers_of(core: &Arc<RuntimeCore>, addr: u64) -> Vec<lxfi_core::PrincipalId> {
    let mut v = Vec::new();
    core.collect_writers(addr, 8, &mut v);
    v.sort_unstable();
    v
}

fn linear_writers_of(core: &Arc<RuntimeCore>, addr: u64) -> Vec<lxfi_core::PrincipalId> {
    (0..core.principal_count())
        .map(|i| lxfi_core::PrincipalId(i as u32))
        .filter(|&p| core.write_overlaps(p, addr, 8))
        .collect()
}
