//! Property tests for the epoch-validated write-guard cache.
//!
//! Two [`Runtime`]s — one with the cache enabled (the default), one with
//! `guard_cache_enabled = false` — are driven through identical random
//! grant / revoke / transfer / check interleavings and must produce
//! **identical allow/deny decisions** at every guarded write. A naive
//! model (per-principal `Vec<(addr, size)>` with the §3.1
//! instance→shared fallback spelled out longhand) is checked as a third
//! opinion, mirroring the three-way writer-index oracle.
//!
//! Sequences include revocations from the shared principal (which must
//! invalidate every instance's cached intervals through the epoch
//! hierarchy), `transfer`-style `revoke_everywhere`, `kfree`-style
//! overlapping revocation, and ranges whose end arithmetic saturates
//! near `Word::MAX` (where a cached interval end of exactly `MAX` meets
//! overflowing check lengths).

use proptest::prelude::*;

use lxfi_core::{PrincipalId, RawCap, Runtime, ThreadId};

/// Principal slots: slot 0 is the module's shared principal, slots
/// 1..NSLOTS are instances.
const NSLOTS: usize = 5;

const STACK_BASE: u64 = 0xffff_9000_0000_0000;

#[derive(Debug, Clone)]
enum Op {
    Grant(usize, u64, u64),
    Revoke(usize, u64, u64),
    Transfer(u64, u64),
    RevokeOverlapping(u64, u64),
    /// `check_write` in slot's principal context over `[addr, addr+len)`.
    Check(usize, u64, u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // A small address universe so grants collide and overlap often, with
    // sizes up to several pages so covering intervals split and merge.
    let slot = 0usize..NSLOTS;
    let addr = 0x10_0000u64..0x10_2000;
    let size = prop_oneof![1u64..64, 64u64..2000, Just(8192u64)];
    let len = prop_oneof![1u64..16, Just(64u64), Just(4096u64)];
    prop_oneof![
        (slot.clone(), addr.clone(), size.clone()).prop_map(|(p, a, s)| Op::Grant(p, a, s)),
        (slot.clone(), addr.clone(), size.clone()).prop_map(|(p, a, s)| Op::Revoke(p, a, s)),
        (addr.clone(), size.clone()).prop_map(|(a, s)| Op::Transfer(a, s)),
        (addr.clone(), size).prop_map(|(a, s)| Op::RevokeOverlapping(a, s)),
        (slot, addr, len).prop_map(|(p, a, l)| Op::Check(p, a, l)),
    ]
}

/// Ops near the top of the address space, where grant ends saturate at
/// `Word::MAX` and check ends can overflow outright.
fn arb_op_near_max() -> impl Strategy<Value = Op> {
    let slot = 0usize..NSLOTS;
    let addr = prop_oneof![
        u64::MAX - 0x1000..u64::MAX,
        Just(u64::MAX),
        Just(u64::MAX - 1),
        Just(u64::MAX - 8),
    ];
    let size = prop_oneof![1u64..64, Just(u64::MAX), Just(u64::MAX / 2), Just(4096u64)];
    let len = prop_oneof![1u64..16, Just(u64::MAX), Just(0x2000u64)];
    prop_oneof![
        (slot.clone(), addr.clone(), size.clone()).prop_map(|(p, a, s)| Op::Grant(p, a, s)),
        (slot.clone(), addr.clone(), size.clone()).prop_map(|(p, a, s)| Op::Revoke(p, a, s)),
        (addr.clone(), size.clone()).prop_map(|(a, s)| Op::Transfer(a, s)),
        (addr.clone(), size).prop_map(|(a, s)| Op::RevokeOverlapping(a, s)),
        (slot, addr, len).prop_map(|(p, a, l)| Op::Check(p, a, l)),
    ]
}

/// The naive model: per-slot granted ranges with the documented
/// saturating semantics and the instance→shared coverage fallback.
struct Naive {
    ranges: Vec<Vec<(u64, u64)>>,
}

impl Naive {
    fn new() -> Self {
        Naive {
            ranges: vec![Vec::new(); NSLOTS],
        }
    }
    fn clamp(a: u64, s: u64) -> u64 {
        s.min(u64::MAX - a)
    }
    fn grant(&mut self, p: usize, a: u64, s: u64) {
        let s = Self::clamp(a, s);
        if s > 0 && !self.ranges[p].contains(&(a, s)) {
            self.ranges[p].push((a, s));
        }
    }
    fn revoke(&mut self, p: usize, a: u64, s: u64) {
        let s = Self::clamp(a, s);
        self.ranges[p].retain(|&(x, y)| !(x == a && y == s && s > 0));
    }
    fn revoke_overlapping(&mut self, p: usize, a: u64, s: u64) {
        if s == 0 {
            return;
        }
        let end = a.saturating_add(s);
        self.ranges[p].retain(|&(x, y)| !(x < end && a < x + y));
    }
    fn slot_covers(&self, p: usize, a: u64, end: u64) -> bool {
        self.ranges[p].iter().any(|&(x, y)| x <= a && end <= x + y)
    }
    /// The `check_write` decision: zero-length allowed, overflowing end
    /// denied, stack writes out of universe, single-grant coverage with
    /// the instance→shared fallback (slot 0 IS shared: own table only).
    fn allows(&self, p: usize, a: u64, l: u64) -> bool {
        if l == 0 {
            return true;
        }
        let Some(end) = a.checked_add(l) else {
            return false;
        };
        self.slot_covers(p, a, end) || (p != 0 && self.slot_covers(0, a, end))
    }
}

/// A runtime with the shared principal in slot 0 and instances after.
fn runtime_with_slots() -> (Runtime, Vec<PrincipalId>) {
    let mut rt = Runtime::new();
    let m = rt.register_module("pt");
    rt.register_thread(ThreadId(0), STACK_BASE, 0x2000);
    let mut slots = vec![rt.shared_principal(m)];
    for i in 1..NSLOTS {
        slots.push(rt.principal_for_name(m, 0x9000 + i as u64 * 8));
    }
    (rt, slots)
}

/// Runs `check_write` for `slot` on one runtime.
fn check_on(rt: &mut Runtime, slots: &[PrincipalId], slot: usize, a: u64, l: u64) -> bool {
    let m = lxfi_core::ModuleId(0);
    let t = ThreadId(0);
    rt.thread(t).set_current(Some((m, slots[slot])));
    let ok = rt.check_write(t, a, l).is_ok();
    rt.thread(t).set_current(None);
    ok
}

/// Probe points worth re-checking after the sequence: op boundaries and
/// their neighbors, for every slot.
fn probe_points(ops: &[Op]) -> Vec<u64> {
    let mut probes = Vec::new();
    for op in ops {
        let (a, s) = match *op {
            Op::Grant(_, a, s) | Op::Revoke(_, a, s) | Op::Check(_, a, s) => (a, s),
            Op::Transfer(a, s) | Op::RevokeOverlapping(a, s) => (a, s),
        };
        let end = a.saturating_add(s.min(u64::MAX - a));
        for probe in [
            a,
            a.wrapping_sub(8),
            a.saturating_add(1),
            end.wrapping_sub(1),
            end,
        ] {
            probes.push(probe);
        }
    }
    probes
}

/// Drives a cached runtime, an uncached runtime, and the naive model
/// through one sequence; every check must agree three ways.
fn check_sequence(ops: &[Op]) {
    let (mut cached, slots) = runtime_with_slots();
    let (mut uncached, slots2) = runtime_with_slots();
    uncached.guard_cache_enabled = false;
    assert_eq!(slots, slots2);
    let mut naive = Naive::new();

    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Grant(pi, a, s) => {
                cached.grant(slots[pi], RawCap::write(a, s));
                uncached.grant(slots[pi], RawCap::write(a, s));
                naive.grant(pi, a, s);
            }
            Op::Revoke(pi, a, s) => {
                cached.revoke(slots[pi], RawCap::write(a, s));
                uncached.revoke(slots[pi], RawCap::write(a, s));
                naive.revoke(pi, a, s);
            }
            Op::Transfer(a, s) => {
                cached.revoke_everywhere(RawCap::write(a, s));
                uncached.revoke_everywhere(RawCap::write(a, s));
                for pi in 0..NSLOTS {
                    naive.revoke(pi, a, s);
                }
            }
            Op::RevokeOverlapping(a, s) => {
                cached.revoke_write_overlapping_everywhere(a, s);
                uncached.revoke_write_overlapping_everywhere(a, s);
                for pi in 0..NSLOTS {
                    naive.revoke_overlapping(pi, a, s);
                }
            }
            Op::Check(pi, a, l) => {
                let want = naive.allows(pi, a, l);
                let with_cache = check_on(&mut cached, &slots, pi, a, l);
                let without = check_on(&mut uncached, &slots, pi, a, l);
                assert_eq!(
                    with_cache, want,
                    "step {step}: cached check(slot {pi}, {a:#x}, {l}) vs naive"
                );
                assert_eq!(
                    without, want,
                    "step {step}: uncached check(slot {pi}, {a:#x}, {l}) vs naive"
                );
            }
        }
    }

    // Final sweep: every op boundary, every slot, 8-byte and 1-byte
    // writes — the cached runtime carries whatever cache state the
    // sequence left behind, and must still agree.
    for probe in probe_points(ops) {
        for pi in 0..NSLOTS {
            for l in [1u64, 8] {
                let want = naive.allows(pi, probe, l);
                assert_eq!(
                    check_on(&mut cached, &slots, pi, probe, l),
                    want,
                    "sweep: cached check(slot {pi}, {probe:#x}, {l})"
                );
                assert_eq!(
                    check_on(&mut uncached, &slots, pi, probe, l),
                    want,
                    "sweep: uncached check(slot {pi}, {probe:#x}, {l})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Cached and uncached runtimes agree with the naive model under
    /// random capability traffic.
    #[test]
    fn epoch_cache_never_changes_decisions(
        ops in proptest::collection::vec(arb_op(), 1..50),
    ) {
        check_sequence(&ops);
    }

    /// Same agreement where end arithmetic saturates at `Word::MAX`.
    #[test]
    fn epoch_cache_agrees_near_max(
        ops in proptest::collection::vec(arb_op_near_max(), 1..40),
    ) {
        check_sequence(&ops);
    }

    /// Mixed universes: low-address and saturating ops interleaved, so
    /// cached intervals from one universe sit in the ways while the
    /// other universe churns.
    #[test]
    fn epoch_cache_agrees_mixed(
        low in proptest::collection::vec(arb_op(), 1..25),
        high in proptest::collection::vec(arb_op_near_max(), 1..25),
    ) {
        let mut ops = low;
        ops.extend(high);
        check_sequence(&ops);
    }
}
