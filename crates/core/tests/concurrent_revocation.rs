//! Concurrent guard soundness: racing revokes against guarded stores.
//!
//! The invariant under test is the tentpole's acceptance bar: **no
//! stale-epoch cache hit may ever authorize a revoked write** — once a
//! revoke has completed (happens-before established), every thread's
//! next guard on the revoked coverage must deny, no matter what its
//! private epoch cache held.
//!
//! The vendored toolchain has no `loom`, so the schedule exploration is
//! done the barrier-stress way: worker threads hold hot caches while a
//! churn thread revokes and re-grants the exact coverage they write,
//! with `std::sync::Barrier` establishing the happens-before edges the
//! assertions need — plus unsynchronized chaos threads hammering
//! unrelated principals through the same shard locks to keep the locks
//! and the interner under real contention while the phased assertions
//! run. A final pass checks the index's structural invariants and that
//! the sharded index, the linear walk, and the capability tables agree
//! exactly once the threads quiesce.

#![cfg(not(miri))] // spawns OS threads and relies on real scheduling

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use lxfi_core::{GuardHandle, ModuleId, PrincipalId, RawCap, Runtime, RuntimeCore};

/// Builds a sharded world: one module, `writers` instance principals
/// each owning a private object, plus a churn arena in its own shard.
fn world(writers: usize) -> (Arc<RuntimeCore>, ModuleId, Vec<PrincipalId>) {
    let mut rt = Runtime::with_shard_boundaries(vec![0x10_0000, 0x20_0000, 0x30_0000]);
    let m = rt.register_module("mt");
    let ps: Vec<PrincipalId> = (0..writers)
        .map(|i| rt.principal_for_name(m, 0x9000 + i as u64 * 8))
        .collect();
    for (i, &p) in ps.iter().enumerate() {
        rt.grant(p, RawCap::write(obj(i), 0x100));
    }
    (rt.share(), m, ps)
}

/// The `i`-th writer's private object (all in the second shard).
fn obj(i: usize) -> u64 {
    0x10_0000 + i as u64 * 0x1000
}

/// Phased revoke race: the writer's cache is hot when the churn thread
/// revokes its exact coverage; the barrier makes the revoke
/// happen-before the next batch of guards, which must all deny. Then
/// the grant comes back and the guards must all allow again — across
/// many rounds, with chaos threads keeping the shard locks and the
/// interner busy the whole time.
#[test]
fn racing_revokes_never_authorize_stale_writes() {
    const ROUNDS: usize = 200;
    const STORES: usize = 64;
    let (core, m, ps) = world(3);
    let victim = ps[0];
    let cap = RawCap::write(obj(0), 0x100);
    let barrier = Arc::new(Barrier::new(2));
    let stop = Arc::new(AtomicBool::new(false));

    // Chaos: two threads churning *other* principals' grants and
    // guarding their own stores, unsynchronized with the phased pair.
    let mut chaos = Vec::new();
    for (ci, &p) in ps.iter().enumerate().skip(1) {
        let core = core.clone();
        let stop = stop.clone();
        chaos.push(thread::spawn(move || {
            let mut h: GuardHandle = GuardHandle::new(core.clone());
            h.set_current(Some((m, p)));
            let spare = RawCap::write(0x20_0000 + ci as u64 * 0x1000, 0x80);
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                core.grant(p, spare);
                h.check_write(spare.addr, 8).expect("own spare grant");
                h.check_write(obj(ci), 8).expect("own stable grant");
                core.revoke(p, spare);
                // The stable grant must never be disturbed by anyone.
                h.check_write(obj(ci), 8).expect("own stable grant");
                assert!(
                    h.check_write(0x30_0000 + (i % 64) * 8, 8).is_err(),
                    "never-granted region must deny"
                );
                i += 1;
            }
        }));
    }

    let churner = {
        let core = core.clone();
        let barrier = barrier.clone();
        thread::spawn(move || {
            for _ in 0..ROUNDS {
                barrier.wait(); // writer is about to guard with a hot cache
                barrier.wait(); // writer finished the allowed batch
                let (removed, bumps) = core.revoke(victim, cap);
                assert!(removed && bumps > 0);
                barrier.wait(); // revoke is published; writer asserts denies
                barrier.wait(); // writer finished the denied batch
                core.grant(victim, cap);
            }
        })
    };

    let mut h: GuardHandle = GuardHandle::new(core.clone());
    h.set_current(Some((m, victim)));
    for round in 0..ROUNDS {
        barrier.wait();
        for s in 0..STORES {
            h.check_write(obj(0) + (s as u64 % 32) * 8, 8)
                .unwrap_or_else(|e| panic!("round {round}: granted store denied: {e}"));
        }
        barrier.wait();
        barrier.wait(); // ← the revoke happened-before this point
        for s in 0..STORES {
            assert!(
                h.check_write(obj(0) + (s as u64 % 32) * 8, 8).is_err(),
                "round {round} store {s}: stale cached grant authorized a \
                 revoked write"
            );
        }
        barrier.wait();
    }
    churner.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    for c in chaos {
        c.join().unwrap();
    }
    core.check_index_invariants();
    assert_eq!(
        h.stats.write_cache_hits + h.stats.write_cache_misses,
        (ROUNDS * STORES * 2) as u64,
        "every guard consulted the cache"
    );
}

/// The §3.1 hierarchy race: instances cache coverage derived from the
/// SHARED principal's table on several threads at once; revoking from
/// shared must invalidate all of them, transitively, across threads.
#[test]
fn shared_revoke_invalidates_every_threads_instance_cache() {
    const ROUNDS: usize = 100;
    const THREADS: usize = 4;
    let mut rt = Runtime::with_shard_boundaries(vec![0x10_0000]);
    let m = rt.register_module("mt");
    let shared = rt.shared_principal(m);
    let cap = RawCap::write(0x10_0000, 0x1000);
    rt.grant(shared, cap);
    let ps: Vec<PrincipalId> = (0..THREADS)
        .map(|i| rt.principal_for_name(m, 0x9000 + i as u64 * 8))
        .collect();
    let core = rt.share();
    let barrier = Arc::new(Barrier::new(THREADS + 1));

    let workers: Vec<_> = ps
        .iter()
        .map(|&p| {
            let core = core.clone();
            let barrier = barrier.clone();
            thread::spawn(move || {
                let mut h: GuardHandle = GuardHandle::new(core);
                h.set_current(Some((m, p)));
                for round in 0..ROUNDS {
                    barrier.wait();
                    // Hot phase: shared-derived coverage, cached under p.
                    h.check_write(0x10_0000 + (round as u64 % 128) * 8, 8)
                        .expect("shared grant live");
                    h.check_write(0x10_0000, 16).expect("shared grant live");
                    barrier.wait();
                    barrier.wait(); // ← shared revoke happened-before here
                    assert!(
                        h.check_write(0x10_0000, 8).is_err(),
                        "round {round}: instance cache survived a shared revoke"
                    );
                    barrier.wait();
                }
            })
        })
        .collect();

    for _ in 0..ROUNDS {
        barrier.wait(); // workers warm their caches
        barrier.wait();
        let (removed, bumps) = core.revoke(shared, cap);
        assert!(removed);
        // Shared revoke bumps shared + global + every instance.
        assert_eq!(bumps as usize, 2 + THREADS);
        barrier.wait();
        barrier.wait();
        core.grant(shared, cap);
    }
    for w in workers {
        w.join().unwrap();
    }
    core.check_index_invariants();
}

/// Unsynchronized chaos: every thread grants/revokes/kfrees its own
/// region while guarding stores, all through the same shard array and
/// interner. After quiescence the index must satisfy its structural
/// invariants and agree exactly with the per-principal tables (the
/// linear walk) — i.e. no race left the index over- or
/// under-approximating the capability state.
#[test]
fn concurrent_churn_preserves_index_table_agreement() {
    const THREADS: usize = 4;
    const OPS: u64 = 2_000;
    let mut rt = Runtime::with_shard_boundaries(vec![0x10_0000, 0x20_0000, 0x30_0000]);
    let m = rt.register_module("mt");
    let ps: Vec<PrincipalId> = (0..THREADS)
        .map(|i| rt.principal_for_name(m, 0x9000 + i as u64 * 8))
        .collect();
    let core = rt.share();
    let total_denied = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..THREADS)
        .map(|ti| {
            let core = core.clone();
            let p = ps[ti];
            let total_denied = total_denied.clone();
            thread::spawn(move || {
                let mut h: GuardHandle = GuardHandle::new(core.clone());
                h.set_current(Some((m, p)));
                // Deterministic per-thread op mix over the thread's own
                // sub-arena (threads share shards, not ranges, so the
                // linearized outcome per principal is deterministic).
                let base = 0x10_0000 + ti as u64 * 0x4000;
                let mut x = 0x9e37_79b9_u64.wrapping_mul(ti as u64 + 1);
                for _ in 0..OPS {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let g = (x >> 33) % 16;
                    let cap = RawCap::write(base + g * 0x100, 0x100);
                    match (x >> 29) & 3 {
                        0 => core.grant(p, cap),
                        1 => {
                            core.revoke(p, cap);
                        }
                        2 => {
                            core.revoke_write_overlapping_everywhere(cap.addr, 0x40);
                        }
                        _ => {
                            if h.check_write(cap.addr, 8).is_err() {
                                total_denied.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    core.check_index_invariants();
    // Quiesced: the sharded index and the per-principal tables must
    // agree byte-for-byte on writer membership.
    let rt2 = Runtime::from_core(core);
    for probe in (0x10_0000u64..0x10_0000 + THREADS as u64 * 0x4000).step_by(0x80) {
        assert_eq!(
            rt2.writers_of(probe),
            rt2.writers_of_linear(probe),
            "index/table divergence at {probe:#x}"
        );
    }
}

/// Regression: revoking one of two overlapping grants reinstates the
/// survivor's index coverage atomically per shard. A concurrent
/// indirect-call check on a slot the survivor still covers must never
/// transiently see "no writers" — that would skip the writer's CALL
/// check and authorize the call. The writer here holds no CALL
/// capability, so every single check must fail.
#[test]
fn indcall_never_misses_a_surviving_writer_during_revoke() {
    const ROUNDS: u64 = 30_000;
    let mut rt = Runtime::with_shard_boundaries(vec![0x10_0000, 0x20_0000]);
    let m = rt.register_module("mt");
    let p = rt.principal_for_name(m, 0x9000);
    let slot = 0x10_0800u64;
    // Two overlapping grants both covering the slot; the churn revokes
    // and re-grants only the second, so the first always survives.
    let keep = RawCap::write(0x10_0000, 0x1000);
    let churned = RawCap::write(0x10_0400, 0x1000);
    rt.grant(p, keep);
    rt.grant(p, churned);
    let core = rt.share();
    let stop = Arc::new(AtomicBool::new(false));

    let churner = {
        let core = core.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let (removed, _) = core.revoke(p, churned);
                assert!(removed);
                core.grant(p, churned);
            }
        })
    };

    let mut h: GuardHandle = GuardHandle::new(core.clone());
    for i in 0..ROUNDS {
        let err = h
            .check_indcall(slot, 0xdead_beef, 0)
            .expect_err("a live writer without CALL must always be caught");
        assert!(
            matches!(err, lxfi_core::Violation::IndCallUnauthorized { .. }),
            "round {i}: unexpected violation {err:?}"
        );
    }
    stop.store(true, Ordering::Relaxed);
    churner.join().unwrap();
    core.check_index_invariants();
}
