//! Differential property tests for the striped writer-set bitmap.
//!
//! A [`StripedWriterMap`] (per-address-region stripes, atomic clean
//! census, generation-tokened deferred clears) and the retired single
//! global [`WriterMap`] are driven through identical mark/clear
//! sequences and must expose identical granule state at every probe —
//! across proptest-chosen stripe boundaries, so no boundary placement
//! may ever change an answer.
//!
//! Deferred clears are exercised against their soundness contract:
//!
//! - a token drained with **no intervening mark or revoke** on its
//!   stripe must always apply, and must clear exactly the granules an
//!   immediate `clear_zeroed` would have cleared (the oracle applies
//!   the same clear to the global map only when the drain applied);
//! - a token whose stripe saw an intervening mark must be reported
//!   stale and clear **nothing** (write evidence survives).

use proptest::prelude::*;

use lxfi_core::writer_set::{StripedWriterMap, WriterMap};

/// Probe universe: four pages spanning up to three stripe boundaries.
const UNIVERSE: u64 = 0x4000;
const GRANULE: u64 = 64;

#[derive(Debug, Clone)]
enum Op {
    Mark(u64, u64),
    /// Immediate clear; `keep_mod` parameterizes the still-covered
    /// predicate (keep granules whose index is ≡ 0 mod keep_mod).
    Clear(u64, u64, u64),
    /// Deferred clear; `interfere` optionally marks a range between
    /// token capture and drain.
    ClearDeferred(u64, u64, u64, Option<(u64, u64)>),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let addr = 0u64..UNIVERSE;
    let len = prop_oneof![1u64..GRANULE, GRANULE..0x1000, Just(0x2000u64)];
    let keep = 1u64..5;
    prop_oneof![
        (addr.clone(), len.clone()).prop_map(|(a, l)| Op::Mark(a, l)),
        (addr.clone(), len.clone(), keep.clone()).prop_map(|(a, l, k)| Op::Clear(a, l, k)),
        (
            addr.clone(),
            len.clone(),
            keep,
            proptest::option::of((addr, len))
        )
            .prop_map(|(a, l, k, i)| Op::ClearDeferred(a, l, k, i)),
    ]
}

/// Keep-predicate shared by both maps: deterministic in the granule
/// base, so immediate and deferred evaluation see the same coverage.
fn keep(granule: u64, keep_mod: u64) -> bool {
    (granule / GRANULE).is_multiple_of(keep_mod)
}

fn probe_grid(striped: &StripedWriterMap, global: &WriterMap) {
    for g in (0..UNIVERSE).step_by(GRANULE as usize) {
        assert_eq!(
            striped.maybe_written(g),
            global.maybe_written(g),
            "granule {g:#x} diverged"
        );
    }
    assert_eq!(striped.marked_granules(), global.marked_granules());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn striped_map_matches_global_under_any_boundaries(
        boundaries in proptest::collection::vec(0u64..UNIVERSE, 0..4),
        ops in proptest::collection::vec(arb_op(), 1..60),
    ) {
        let striped = StripedWriterMap::with_boundaries(&boundaries);
        let mut global = WriterMap::new();
        for op in ops {
            match op {
                Op::Mark(a, l) => {
                    striped.mark(a, l);
                    global.mark(a, l);
                }
                Op::Clear(a, l, k) => {
                    let sc = striped.clear_zeroed(a, l, |g| keep(g, k));
                    let gc = global.clear_zeroed(a, l, |g| keep(g, k));
                    prop_assert_eq!(sc, gc, "immediate clear counts diverged");
                }
                Op::ClearDeferred(a, l, k, interfere) => {
                    let Some(token) = striped.defer_token(a, l) else {
                        // Multi-stripe range: caller must take the
                        // immediate path; mirror it on both maps.
                        let sc = striped.clear_zeroed(a, l, |g| keep(g, k));
                        let gc = global.clear_zeroed(a, l, |g| keep(g, k));
                        prop_assert_eq!(sc, gc);
                        probe_grid(&striped, &global);
                        continue;
                    };
                    if let Some((ia, il)) = interfere {
                        striped.mark(ia, il);
                        global.mark(ia, il);
                    }
                    match striped.try_drain_note(a, l, token, |g| keep(g, k)) {
                        Some(sc) => {
                            // The drain applied: it must equal a clear
                            // performed right now.
                            let gc = global.clear_zeroed(a, l, |g| keep(g, k));
                            prop_assert_eq!(sc, gc, "drained clear diverged");
                        }
                        None => {
                            // Stale: only legal if something interfered.
                            prop_assert!(
                                interfere.is_some(),
                                "token went stale with no intervening mark"
                            );
                        }
                    }
                }
            }
            probe_grid(&striped, &global);
        }
    }

    #[test]
    fn quiet_tokens_always_drain(
        boundaries in proptest::collection::vec(0u64..UNIVERSE, 0..4),
        marks in proptest::collection::vec((0u64..UNIVERSE, 1u64..0x800), 1..10),
        clear in (0u64..UNIVERSE, 1u64..0x800),
    ) {
        let striped = StripedWriterMap::with_boundaries(&boundaries);
        for &(a, l) in &marks {
            striped.mark(a, l);
        }
        let (ca, cl) = clear;
        if let Some(token) = striped.defer_token(ca, cl) {
            prop_assert!(
                striped.try_drain_note(ca, cl, token, |_| false).is_some(),
                "quiescent token must apply"
            );
            // Every *fully covered* granule cleared (keep-predicate
            // all-false); partially-zeroed edge granules stay marked.
            let mut g = ca.div_ceil(GRANULE) * GRANULE;
            while g + GRANULE <= ca + cl {
                prop_assert!(!striped.maybe_written(g), "granule {g:#x} still marked");
                g += GRANULE;
            }
        }
    }
}
