//! Property tests for multiple [`GuardHandle`]s over one shared core.
//!
//! Random single-threaded interleavings of handle guard checks and core
//! capability mutations (grant / revoke / transfer / kfree) are driven
//! against the naive oracle from the epoch-cache property test. Each
//! handle keeps its own private epoch cache across every core mutation,
//! so the property exercises exactly the state a worker thread would
//! carry between operations of other threads — any missing epoch bump
//! or mis-stamped cache fill shows up as a handle answering from stale
//! state. The facade `Runtime` is interleaved as a third guard surface
//! (its lanes are the same mechanism the simulated kernel uses).
//!
//! Sequences include revocations from the shared principal (hierarchy
//! invalidation through every handle), and ranges whose end arithmetic
//! saturates near `Word::MAX`.

use proptest::prelude::*;

use lxfi_core::{GuardHandle, ModuleId, PrincipalId, RawCap, Runtime, ThreadId};

/// Principal slots: slot 0 is the module's shared principal, slots
/// 1..NSLOTS are instances.
const NSLOTS: usize = 5;
/// Guard handles driven concurrently (plus the facade's own lane).
const NHANDLES: usize = 3;

const STACK_BASE: u64 = 0xffff_9000_0000_0000;

#[derive(Debug, Clone)]
enum Op {
    Grant(usize, u64, u64),
    Revoke(usize, u64, u64),
    Transfer(u64, u64),
    RevokeOverlapping(u64, u64),
    /// `check_write` on handle `h` in slot's principal context.
    Check(usize, usize, u64, u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let slot = 0usize..NSLOTS;
    let handle = 0usize..NHANDLES + 1; // NHANDLES = the facade lane
    let addr = 0x10_0000u64..0x10_2000;
    let size = prop_oneof![1u64..64, 64u64..2000, Just(8192u64)];
    let len = prop_oneof![1u64..16, Just(64u64), Just(4096u64)];
    prop_oneof![
        (slot.clone(), addr.clone(), size.clone()).prop_map(|(p, a, s)| Op::Grant(p, a, s)),
        (slot.clone(), addr.clone(), size.clone()).prop_map(|(p, a, s)| Op::Revoke(p, a, s)),
        (addr.clone(), size.clone()).prop_map(|(a, s)| Op::Transfer(a, s)),
        (addr.clone(), size).prop_map(|(a, s)| Op::RevokeOverlapping(a, s)),
        (handle, slot, addr, len).prop_map(|(h, p, a, l)| Op::Check(h, p, a, l)),
    ]
}

/// Ops near the top of the address space, where grant ends saturate at
/// `Word::MAX` and check ends can overflow outright.
fn arb_op_near_max() -> impl Strategy<Value = Op> {
    let slot = 0usize..NSLOTS;
    let handle = 0usize..NHANDLES + 1;
    let addr = prop_oneof![
        u64::MAX - 0x1000..u64::MAX,
        Just(u64::MAX),
        Just(u64::MAX - 1),
        Just(u64::MAX - 8),
    ];
    let size = prop_oneof![1u64..64, Just(u64::MAX), Just(u64::MAX / 2), Just(4096u64)];
    let len = prop_oneof![1u64..16, Just(u64::MAX), Just(0x2000u64)];
    prop_oneof![
        (slot.clone(), addr.clone(), size.clone()).prop_map(|(p, a, s)| Op::Grant(p, a, s)),
        (slot.clone(), addr.clone(), size.clone()).prop_map(|(p, a, s)| Op::Revoke(p, a, s)),
        (addr.clone(), size.clone()).prop_map(|(a, s)| Op::Transfer(a, s)),
        (addr.clone(), size).prop_map(|(a, s)| Op::RevokeOverlapping(a, s)),
        (handle, slot, addr, len).prop_map(|(h, p, a, l)| Op::Check(h, p, a, l)),
    ]
}

/// The naive model: per-slot granted ranges with the documented
/// saturating semantics and the instance→shared coverage fallback.
struct Naive {
    ranges: Vec<Vec<(u64, u64)>>,
}

impl Naive {
    fn new() -> Self {
        Naive {
            ranges: vec![Vec::new(); NSLOTS],
        }
    }
    fn clamp(a: u64, s: u64) -> u64 {
        s.min(u64::MAX - a)
    }
    fn grant(&mut self, p: usize, a: u64, s: u64) {
        let s = Self::clamp(a, s);
        if s > 0 && !self.ranges[p].contains(&(a, s)) {
            self.ranges[p].push((a, s));
        }
    }
    fn revoke(&mut self, p: usize, a: u64, s: u64) {
        let s = Self::clamp(a, s);
        self.ranges[p].retain(|&(x, y)| !(x == a && y == s && s > 0));
    }
    fn revoke_overlapping(&mut self, p: usize, a: u64, s: u64) {
        if s == 0 {
            return;
        }
        let end = a.saturating_add(s);
        self.ranges[p].retain(|&(x, y)| !(x < end && a < x + y));
    }
    fn slot_covers(&self, p: usize, a: u64, end: u64) -> bool {
        self.ranges[p].iter().any(|&(x, y)| x <= a && end <= x + y)
    }
    fn allows(&self, p: usize, a: u64, l: u64) -> bool {
        if l == 0 {
            return true;
        }
        let Some(end) = a.checked_add(l) else {
            return false;
        };
        self.slot_covers(p, a, end) || (p != 0 && self.slot_covers(0, a, end))
    }
}

/// Shard boundaries inside (and beyond) the op universes, so grants
/// split across shard locks and the near-MAX universe exercises the
/// top shard.
fn boundaries() -> Vec<u64> {
    vec![0x10_0800, 0x10_1000, u64::MAX - 0x800]
}

fn check_sequence(ops: &[Op]) {
    let mut rt = Runtime::with_shard_boundaries(boundaries());
    let m = rt.register_module("pt");
    rt.register_thread(ThreadId(0), STACK_BASE, 0x2000);
    let mut slots = vec![rt.shared_principal(m)];
    for i in 1..NSLOTS {
        slots.push(rt.principal_for_name(m, 0x9000 + i as u64 * 8));
    }
    let mut handles: Vec<GuardHandle> = (0..NHANDLES)
        .map(|_| GuardHandle::new(rt.share()))
        .collect();
    let mut naive = Naive::new();

    let check_on = |rt: &mut Runtime,
                    handles: &mut Vec<GuardHandle>,
                    slots: &[PrincipalId],
                    h: usize,
                    slot: usize,
                    a: u64,
                    l: u64|
     -> bool {
        if h == NHANDLES {
            // The facade's own lane (what the simulated kernel drives).
            let t = ThreadId(0);
            rt.thread(t).set_current(Some((ModuleId(0), slots[slot])));
            let ok = rt.check_write(t, a, l).is_ok();
            rt.thread(t).set_current(None);
            ok
        } else {
            let hd = &mut handles[h];
            hd.set_current(Some((ModuleId(0), slots[slot])));
            let ok = hd.check_write(a, l).is_ok();
            hd.set_current(None);
            ok
        }
    };

    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Grant(pi, a, s) => {
                rt.grant(slots[pi], RawCap::write(a, s));
                naive.grant(pi, a, s);
            }
            Op::Revoke(pi, a, s) => {
                rt.revoke(slots[pi], RawCap::write(a, s));
                naive.revoke(pi, a, s);
            }
            Op::Transfer(a, s) => {
                rt.revoke_everywhere(RawCap::write(a, s));
                for pi in 0..NSLOTS {
                    naive.revoke(pi, a, s);
                }
            }
            Op::RevokeOverlapping(a, s) => {
                rt.revoke_write_overlapping_everywhere(a, s);
                for pi in 0..NSLOTS {
                    naive.revoke_overlapping(pi, a, s);
                }
            }
            Op::Check(h, pi, a, l) => {
                let want = naive.allows(pi, a, l);
                let got = check_on(&mut rt, &mut handles, &slots, h, pi, a, l);
                assert_eq!(
                    got, want,
                    "step {step}: handle {h} check(slot {pi}, {a:#x}, {l})"
                );
            }
        }
        rt.check_index_invariants();
    }

    // Final sweep: every handle, every slot, at every op boundary — the
    // handles carry whatever cache state the sequence left behind, and
    // must still agree with the oracle.
    let mut probes = Vec::new();
    for op in ops {
        let (a, s) = match *op {
            Op::Grant(_, a, s) | Op::Revoke(_, a, s) => (a, s),
            Op::Check(_, _, a, s) | Op::Transfer(a, s) | Op::RevokeOverlapping(a, s) => (a, s),
        };
        let end = a.saturating_add(s.min(u64::MAX - a));
        probes.extend([a, a.wrapping_sub(8), end.wrapping_sub(1), end]);
    }
    for probe in probes {
        for pi in 0..NSLOTS {
            for h in 0..=NHANDLES {
                let want = naive.allows(pi, probe, 8);
                let got = check_on(&mut rt, &mut handles, &slots, h, pi, probe, 8);
                assert_eq!(got, want, "sweep: handle {h} slot {pi} at {probe:#x}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every handle (and the facade lane) agrees with the naive model
    /// under random interleavings of guard checks and core mutations.
    #[test]
    fn handles_agree_with_oracle(
        ops in proptest::collection::vec(arb_op(), 1..45),
    ) {
        check_sequence(&ops);
    }

    /// Same agreement where end arithmetic saturates at `Word::MAX`.
    #[test]
    fn handles_agree_near_max(
        ops in proptest::collection::vec(arb_op_near_max(), 1..35),
    ) {
        check_sequence(&ops);
    }

    /// Mixed universes: low-address and saturating ops interleaved, so
    /// cached intervals from one universe sit in handle caches while
    /// the other universe churns through other shards.
    #[test]
    fn handles_agree_mixed(
        low in proptest::collection::vec(arb_op(), 1..20),
        high in proptest::collection::vec(arb_op_near_max(), 1..20),
    ) {
        let mut ops = low;
        ops.extend(high);
        check_sequence(&ops);
    }
}
