//! The LXFI runtime (§5): principals, capability operations,
//! control-transfer interposition, writer-set-accelerated indirect-call
//! checks, and guard accounting.
//!
//! # Concurrency architecture
//!
//! Since the thread-safe refactor the runtime is split in two:
//!
//! - [`RuntimeCore`] is the **shared world**: principal/module metadata
//!   behind an `RwLock`, per-principal capability tables each behind
//!   their own mutex (lock-free to *index* via a chunked slot table),
//!   per-principal write epochs as atomics, the reverse writer index as
//!   an array of per-shard locks keyed by the address-region shard
//!   boundaries, the writer-set bitmap behind an `RwLock`, and the
//!   interned-ID tables (REF types, iterators, constants, the function
//!   registry) behind an `RwLock`. Everything takes `&self`; the type is
//!   `Send + Sync` and meant to live in an `Arc`.
//! - [`crate::GuardHandle`] is the **per-thread view**: it owns its own
//!   shadow stack, kernel-stack window, epoch-validated write-guard
//!   cache, and `GuardStats`, so concurrent guarded stores from
//!   different threads hit their private caches without any shared
//!   write. Only grant/revoke traffic takes locks (the affected
//!   principal's table mutex plus the affected shards).
//!
//! [`Runtime`] is the single-threaded facade the simulated kernel and
//! the benches drive: the old `&mut self` API, one guard lane (shadow
//! stack + cache) per registered [`ThreadId`], and a plain
//! [`GuardStats`] field — all delegating to an `Arc<RuntimeCore>` that
//! [`Runtime::share`] exposes for spawning [`crate::GuardHandle`]s on
//! other threads.
//!
//! # Locking and soundness discipline
//!
//! Lock order (outer → inner): `meta` → per-principal `caps` mutex →
//! `sharding` (read) → per-shard mutex → interner mutex. The interner is
//! a strict leaf: shard splices are phase-split (see
//! [`crate::writer_index`]), taking the interner only for the
//! id/refcount phase while the memmove runs under the shard lock alone,
//! and nothing acquires a shard while holding the interner. The
//! writer-set bitmap is **striped** by address region
//! ([`crate::writer_set::StripedWriterMap`]): each stripe has its own
//! lock plus a lock-free marked-granule counter, so `maybe_written` /
//! `note_zeroed` on a provably-clean stripe touch no lock, and dirty
//! probes lock only their stripe. A stripe lock nests *inside*
//! `sharding` (an immediate `note_zeroed` holds the sharding read lock
//! while clearing; a grant's `mark` takes the stripe lock alone and
//! releases it before touching the index) — never the other way around.
//! No path takes two `caps` mutexes at once; fallback probes (instance →
//! shared, global → union) lock one table at a time.
//!
//! The write-guard soundness invariant under races — *after a revoke
//! returns, no stale cached grant can authorize a write* — follows from
//! three ordering rules, each enforced here:
//!
//! 1. a revoke removes coverage from the capability table **before**
//!    bumping the affected epochs (so a guard that re-probes can never
//!    re-cache the dying interval under the new epoch);
//! 2. a guard reads the principal's epoch **before** probing the tables
//!    and stamps the cache with that pre-probe value (so the stamp is
//!    never newer than a revocation that raced the probe);
//! 3. epoch bumps traverse the §3.1 hierarchy under the `meta` read
//!    lock, and principal creation takes the `meta` write lock (so an
//!    instance born before a shared-revoke's bump sweep is always
//!    included in it).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use lxfi_machine::{AddressSpace, Word};

use crate::caps::{CapSet, CapType, RawCap, RefTypeId};
use crate::epoch_cache::DEFAULT_WAYS;
use crate::handle::{check_write_in, GuardState};
use crate::principal::{ModuleId, ModuleInfo, PrincipalId, PrincipalKind};
use crate::shadow::{PrincipalCtx, ShadowStack};
use crate::stats::{GuardCosts, GuardKind, GuardStats};
use crate::writer_index::{
    for_each_segment, normalize_boundaries, shard_hi, shard_lo, IndexShard, SetInterner,
};
use crate::writer_set::{StripedWriterMap, ZeroNoteToken};
use crate::Violation;

/// Identifies a kernel thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub u32);

/// Identifies a registered capability iterator. Interned at registration
/// so the enforcement path never hashes iterator names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IteratorId(pub u32);

/// Identifies a named kernel constant usable in annotation expressions.
/// Interned when an annotation referencing the name is compiled or when
/// the constant is defined, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstId(pub u32);

/// A capability emitted by a programmer-supplied capability iterator
/// (§3.3). REF types are pre-interned via [`Runtime::ref_type`], so
/// emitting capabilities involves no string work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmittedCap {
    /// WRITE over a range.
    Write {
        /// Range start.
        addr: Word,
        /// Range length.
        size: u64,
    },
    /// CALL of a target.
    Call {
        /// Call target.
        target: Word,
    },
    /// REF of an interned type.
    Ref {
        /// Interned type.
        rtype: RefTypeId,
        /// Referred value.
        value: Word,
    },
}

/// A capability iterator: walks a data structure in simulated memory and
/// emits the capabilities it contains (e.g. `skb_caps` emits the sk_buff
/// header and its payload buffer).
pub type IteratorFn =
    Box<dyn Fn(&AddressSpace, Word, &mut Vec<EmittedCap>) -> Result<(), String> + Send + Sync>;

/// Metadata for a registered function address.
#[derive(Debug, Clone)]
pub struct FnMeta {
    /// Symbol name.
    pub name: String,
    /// Annotation hash (`ahash`).
    pub ahash: u64,
    /// Owning module (`None` = core kernel).
    pub module: Option<ModuleId>,
}

/// Immutable per-principal metadata (the mutable parts — capability
/// table and epoch — live in the principal's [`PrincipalSlot`]).
#[derive(Debug, Clone, Copy)]
struct PrincipalMeta {
    module: ModuleId,
    kind: PrincipalKind,
    /// Retired principals (their module was quarantined or unloaded)
    /// hold no capabilities, are skipped by global revocation walks, and
    /// are never current again. Ids are stable — slots are not reused —
    /// so a retired id in an old writer set stays meaningful.
    retired: bool,
}

/// Registry state behind the `meta` lock: who the principals and
/// modules are, and the pointer-name maps.
#[derive(Debug, Default)]
struct Meta {
    principals: Vec<PrincipalMeta>,
    modules: Vec<ModuleInfo>,
    /// The quarantine tombstone (see [`RuntimeCore::ensure_tombstone`]),
    /// created lazily so runtimes that never retire anything keep their
    /// principal numbering.
    tombstone: Option<PrincipalId>,
}

/// Interned-name tables behind the `names` lock.
#[derive(Default)]
struct Names {
    ref_types: Vec<String>,
    ref_type_ids: HashMap<String, RefTypeId>,
    iterators: Vec<Option<Arc<IteratorFn>>>,
    iterator_ids: HashMap<String, IteratorId>,
    iterator_names: Vec<String>,
    const_values: Vec<Option<i64>>,
    const_ids: HashMap<String, ConstId>,
    const_names: Vec<String>,
}

/// One principal's mutable state: the write epoch (atomic, read
/// lock-free by every guard) and the capability tables (mutex, taken by
/// grant/revoke and by guard cache misses).
#[derive(Debug)]
struct PrincipalSlot {
    epoch: AtomicU64,
    caps: Mutex<CapSet>,
}

impl Default for PrincipalSlot {
    fn default() -> Self {
        PrincipalSlot {
            epoch: AtomicU64::new(0),
            caps: Mutex::new(CapSet::new()),
        }
    }
}

/// Principals per slot chunk.
const SLOT_CHUNK: usize = 64;
/// Hard cap on principals (chunks are preallocated `OnceLock`s so slot
/// lookup never takes a lock).
const MAX_PRINCIPALS: usize = 1 << 16;

/// A chunked, append-only principal-slot table: indexing is two atomic
/// loads (`OnceLock::get`), so the guard hot path reaches a principal's
/// epoch without any lock while registration (under the `meta` write
/// lock) initializes chunks on demand.
struct SlotTable {
    chunks: Box<[OnceLock<Box<[PrincipalSlot; SLOT_CHUNK]>>]>,
}

impl SlotTable {
    fn new() -> Self {
        SlotTable {
            chunks: (0..MAX_PRINCIPALS / SLOT_CHUNK)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// Makes sure the chunk holding principal `i` exists.
    fn ensure(&self, i: usize) {
        assert!(i < MAX_PRINCIPALS, "principal limit ({MAX_PRINCIPALS})");
        self.chunks[i / SLOT_CHUNK]
            .get_or_init(|| Box::new(std::array::from_fn(|_| PrincipalSlot::default())));
    }

    /// The slot of a registered principal (lock-free).
    fn get(&self, i: usize) -> &PrincipalSlot {
        &self.chunks[i / SLOT_CHUNK]
            .get()
            .expect("principal registered")[i % SLOT_CHUNK]
    }
}

/// The sharded reverse writer index: split points plus one
/// independently locked [`IndexShard`] per region, over one shared
/// (mutexed) set interner. Grant/revoke splices and indirect-call
/// lookups lock only the shards their address range touches, one at a
/// time. Splices are **phase-split**: the interner mutex is taken only
/// for the id/refcount phase of each splice, then released before the
/// interval memmove runs under the shard lock alone — so mutations in
/// different shards overlap except for their brief interner sections,
/// and the lock order is strictly shard → interner (the interner is a
/// leaf). Atomicity per shard comes from the shard lock, which the
/// caller holds across a whole remove-and-reinstate
/// ([`Sharding::replace`]) or holder substitution
/// ([`Sharding::substitute`]); the interner-free queries (`overlaps`,
/// the presence hint) only contend on the shards they touch, and the
/// guard-store hot path touches none of this.
struct Sharding {
    boundaries: Vec<Word>,
    shards: Vec<Mutex<IndexShard>>,
    interner: Mutex<SetInterner>,
    /// Allocation count carried from retired predecessors so the
    /// `sets_ever` gauge stays monotonic across rebuilds.
    ever_carried: u64,
}

impl Sharding {
    fn new(boundaries: Vec<Word>, ever_carried: u64) -> Self {
        let boundaries = normalize_boundaries(boundaries);
        let shards = (0..=boundaries.len())
            .map(|_| Mutex::new(IndexShard::new()))
            .collect();
        Sharding {
            boundaries,
            shards,
            interner: Mutex::new(SetInterner::new()),
            ever_carried,
        }
    }

    /// Runs `f` on every shard segment of `[addr, addr+size)` (clamped),
    /// locking one shard at a time. The clipping walk itself is shared
    /// with the single-threaded index ([`for_each_segment`]).
    fn for_segments(&self, addr: Word, size: u64, mut f: impl FnMut(&mut IndexShard, Word, Word)) {
        for_each_segment(&self.boundaries, addr, size, |s, lo, hi| {
            f(&mut self.shards[s].lock().expect("shard lock"), lo, hi)
        });
    }

    fn add(&self, p: PrincipalId, addr: Word, size: u64) {
        self.for_segments(addr, size, |sh, lo, hi| {
            sh.add_split(&self.interner, p, lo, hi)
        });
    }

    /// Replaces `p`'s index coverage over `[addr, addr+size)` with the
    /// given residual ranges (a revocation survivor set, pre-clipped by
    /// the caller to the window). Each shard's remove-and-restore runs
    /// under a **single** hold of that shard's lock, so a concurrent
    /// indirect-call lookup can never observe the transient no-coverage
    /// state between the removal and the reinstatement — the index may
    /// transiently over-approximate a writer (conservative), never
    /// under-approximate one.
    fn replace(&self, p: PrincipalId, addr: Word, size: u64, residuals: &[(Word, Word)]) {
        self.for_segments(addr, size, |sh, lo, hi| {
            sh.remove_split(&self.interner, p, lo, hi);
            for &(rlo, rhi) in residuals {
                let clo = rlo.max(lo);
                let chi = rhi.min(hi);
                if clo < chi {
                    sh.add_split(&self.interner, p, clo, chi);
                }
            }
        });
    }

    /// The single-holder transfer splice: swaps `src`'s coverage of
    /// `[addr, addr+size)` for `dst`'s, reinstating `src`'s residual
    /// coverage, with each shard's whole substitution under **one** hold
    /// of that shard's lock. A racing lookup sees either the old holder
    /// or the new one (plus residuals) — never a transiently uncovered
    /// range.
    fn substitute(
        &self,
        src: PrincipalId,
        dst: Option<PrincipalId>,
        addr: Word,
        size: u64,
        residuals: &[(Word, Word)],
    ) {
        self.for_segments(addr, size, |sh, lo, hi| {
            sh.remove_split(&self.interner, src, lo, hi);
            for &(rlo, rhi) in residuals {
                let clo = rlo.max(lo);
                let chi = rhi.min(hi);
                if clo < chi {
                    sh.add_split(&self.interner, src, clo, chi);
                }
            }
            if let Some(d) = dst {
                sh.add_split(&self.interner, d, lo, hi);
            }
        });
    }

    fn overlaps(&self, addr: Word, len: u64) -> bool {
        let mut hit = false;
        self.for_segments(addr, len, |sh, lo, hi| hit |= sh.overlaps(lo, hi));
        hit
    }

    fn collect_writers(&self, addr: Word, len: u64, out: &mut Vec<PrincipalId>) {
        self.for_segments(addr, len, |sh, lo, hi| {
            // Shard lock first, interner second (leaf) — the splice order.
            let interner = self.interner.lock().expect("interner lock");
            sh.collect_writers(&interner, lo, hi, out);
        });
    }

    /// Principals present in the shards overlapping `[addr, addr+len)` —
    /// the kfree hint (a superset of the range's actual writers).
    fn present_over(&self, addr: Word, len: u64) -> Vec<PrincipalId> {
        let mut out = Vec::new();
        self.for_segments(addr, len, |sh, _lo, _hi| {
            for p in sh.present_principals() {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        });
        out.sort_unstable();
        out
    }
}

/// Result of a `kfree`-style sweep
/// ([`RuntimeCore::revoke_write_overlapping_everywhere`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct KfreeSweep {
    /// Per-principal epoch bumps the sweep caused.
    pub epoch_bumps: u64,
    /// Principals visited (present in the freed region's shards).
    pub visited: u64,
    /// Principals the presence hint let the sweep skip.
    pub skipped: u64,
}

/// Result of a module-retirement pass ([`RuntimeCore::retire_module`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct RetireSweep {
    /// Principals marked retired by this pass.
    pub principals_retired: u64,
    /// WRITE grants moved to the tombstone.
    pub write_caps_moved: u64,
    /// CALL capabilities discarded.
    pub call_caps_dropped: u64,
    /// REF capabilities discarded.
    pub ref_caps_dropped: u64,
    /// Per-principal epoch bumps the transfer caused.
    pub epoch_bumps: u64,
}

/// The shared, thread-safe half of the runtime. See the module docs for
/// the state split and the locking discipline. All methods take
/// `&self`; wrap it in an [`Arc`] and hand [`crate::GuardHandle`]s to
/// worker threads.
pub struct RuntimeCore {
    meta: RwLock<Meta>,
    slots: SlotTable,
    sharding: RwLock<Sharding>,
    /// Striped by the same region boundaries as the writer index (fixed
    /// at construction: a later `set_shard_boundaries` re-shards the
    /// index only — stripe layout is a perf detail, not semantics).
    writer_map: StripedWriterMap,
    names: RwLock<Names>,
    fns: RwLock<HashMap<Word, FnMeta>>,
    /// Merged per-thread handle stats (handles flush here on drop or via
    /// `GuardHandle::flush_stats`); the single-threaded facade keeps its
    /// own `GuardStats` field instead.
    stats: Mutex<GuardStats>,
    /// Whether debug builds cross-check the kfree presence hint with a
    /// full principal walk after each sweep. Only sound while one
    /// thread mutates capabilities: a concurrent grant landing between
    /// the sweep and the walk (e.g. another CPU transfer-granting a
    /// freshly reallocated slab object at the same address) is
    /// indistinguishable from a hint miss. The multi-CPU kernel turns
    /// this off when its second CPU comes up.
    kfree_cross_check: std::sync::atomic::AtomicBool,
}

impl Default for RuntimeCore {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeCore {
    /// Creates an empty, single-shard core.
    pub fn new() -> Self {
        Self::with_shard_boundaries(Vec::new())
    }

    /// Creates an empty core with the given writer-index shard split
    /// points (the unit of both splice locality and lock granularity).
    pub fn with_shard_boundaries(boundaries: Vec<Word>) -> Self {
        RuntimeCore {
            meta: RwLock::new(Meta::default()),
            slots: SlotTable::new(),
            writer_map: StripedWriterMap::with_boundaries(&boundaries),
            sharding: RwLock::new(Sharding::new(boundaries, 0)),
            names: RwLock::new(Names::default()),
            fns: RwLock::new(HashMap::new()),
            stats: Mutex::new(GuardStats::new()),
            kfree_cross_check: std::sync::atomic::AtomicBool::new(true),
        }
    }

    /// Disables the debug-build kfree-hint cross-check (see the field
    /// docs): call before concurrent capability mutators start.
    pub fn disable_kfree_cross_check(&self) {
        self.kfree_cross_check.store(false, Ordering::Release);
    }

    /// Whether the debug-build kfree-hint cross-check is active.
    pub fn kfree_cross_check_enabled(&self) -> bool {
        self.kfree_cross_check.load(Ordering::Acquire)
    }

    fn slot(&self, p: PrincipalId) -> &PrincipalSlot {
        self.slots.get(p.0 as usize)
    }

    /// The current write-guard epoch of a principal. Guards read this
    /// lock-free before consulting their private caches.
    #[inline]
    pub fn write_epoch(&self, p: PrincipalId) -> u64 {
        self.slot(p).epoch.load(Ordering::Acquire)
    }

    // ------------------------------------------------------------ modules

    /// Registers a module, creating its shared and global principals.
    pub fn register_module(&self, name: &str) -> ModuleId {
        let mut meta = self.meta.write().expect("meta lock");
        let mid = ModuleId(meta.modules.len() as u32);
        let shared = self.new_principal_locked(&mut meta, mid, PrincipalKind::Shared);
        let global = self.new_principal_locked(&mut meta, mid, PrincipalKind::Global);
        meta.modules
            .push(ModuleInfo::new(name.to_string(), shared, global));
        mid
    }

    fn new_principal_locked(
        &self,
        meta: &mut Meta,
        module: ModuleId,
        kind: PrincipalKind,
    ) -> PrincipalId {
        let id = PrincipalId(meta.principals.len() as u32);
        self.slots.ensure(id.0 as usize);
        meta.principals.push(PrincipalMeta {
            module,
            kind,
            retired: false,
        });
        id
    }

    /// Number of registered modules.
    pub fn module_count(&self) -> usize {
        self.meta.read().expect("meta lock").modules.len()
    }

    /// Number of registered principals.
    pub fn principal_count(&self) -> usize {
        self.meta.read().expect("meta lock").principals.len()
    }

    /// The name a module was registered under.
    pub fn module_name(&self, id: ModuleId) -> String {
        self.meta.read().expect("meta lock").modules[id.0 as usize]
            .name
            .clone()
    }

    /// The module's shared principal.
    pub fn shared_principal(&self, id: ModuleId) -> PrincipalId {
        self.meta.read().expect("meta lock").modules[id.0 as usize].shared
    }

    /// The module's global principal.
    pub fn global_principal(&self, id: ModuleId) -> PrincipalId {
        self.meta.read().expect("meta lock").modules[id.0 as usize].global
    }

    /// The kind of a principal.
    pub fn principal_kind(&self, p: PrincipalId) -> PrincipalKind {
        self.meta.read().expect("meta lock").principals[p.0 as usize].kind
    }

    /// Every non-retired principal of a module: shared and global first,
    /// then the live instances (module-teardown enumeration).
    pub fn module_principals(&self, mid: ModuleId) -> Vec<PrincipalId> {
        let meta = self.meta.read().expect("meta lock");
        meta.modules[mid.0 as usize]
            .all_principals()
            .filter(|&p| !meta.principals[p.0 as usize].retired)
            .collect()
    }

    /// The module a principal belongs to.
    pub fn principal_module(&self, p: PrincipalId) -> ModuleId {
        self.meta.read().expect("meta lock").principals[p.0 as usize].module
    }

    // --------------------------------------------------- principal naming

    /// Resolves the principal named by pointer `name`, creating a fresh
    /// instance principal on first use (a module invocation with a
    /// `principal(ptr)` annotation is the instance's birth).
    pub fn principal_for_name(&self, module: ModuleId, name: Word) -> PrincipalId {
        let mut meta = self.meta.write().expect("meta lock");
        if let Some(p) = meta.modules[module.0 as usize].lookup_name(name) {
            return p;
        }
        let p = self.new_principal_locked(&mut meta, module, PrincipalKind::Instance);
        let m = &mut meta.modules[module.0 as usize];
        m.instances.push(p);
        m.names.insert(name, p);
        p
    }

    /// `lxfi_princ_alias(existing, new)` (§3.3): binds `new_name` to the
    /// principal already named `existing_name`. The module code must have
    /// performed an adequate check before calling this (§3.4); the runtime
    /// additionally refuses to alias names the module has never seen.
    pub fn princ_alias(
        &self,
        module: ModuleId,
        existing_name: Word,
        new_name: Word,
    ) -> Result<(), Violation> {
        let mut meta = self.meta.write().expect("meta lock");
        let m = &meta.modules[module.0 as usize];
        let p = m
            .lookup_name(existing_name)
            .ok_or_else(|| Violation::PrincipalDenied {
                why: format!("no principal named {existing_name:#x} in module {}", m.name),
            })?;
        let m = &mut meta.modules[module.0 as usize];
        if let Some(prev) = m.names.get(&new_name) {
            if *prev != p {
                return Err(Violation::PrincipalDenied {
                    why: format!("name {new_name:#x} already bound to a different principal"),
                });
            }
            return Ok(());
        }
        m.names.insert(new_name, p);
        Ok(())
    }

    // ---------------------------------------------------------- retirement

    /// The quarantine tombstone principal, created on first use: a
    /// permanent principal that never executes and is never granted a
    /// CALL capability. Retirement *transfers* a dead module's WRITE
    /// coverage here instead of dropping it, so a function-pointer slot
    /// the dead module poisoned keeps a writer on record — the
    /// indirect-call check then fails `IndCallUnauthorized` forever
    /// (tombstone holds no CALLs) instead of falling through the
    /// empty-writer-set fast exit and dispatching the planted pointer
    /// with kernel privilege. Tombstone coverage drains through the same
    /// legitimate channels as any writer's: `kfree` sweeps, zeroing
    /// (`note_zeroed`), and transfer-grants over reused memory.
    ///
    /// Lazy creation keeps principal numbering untouched for runtimes
    /// that never retire anything; callers that need deterministic ids
    /// across runs (the kernel) call this once at boot.
    pub fn ensure_tombstone(&self) -> PrincipalId {
        if let Some(t) = self.meta.read().expect("meta lock").tombstone {
            return t;
        }
        let mut meta = self.meta.write().expect("meta lock");
        if let Some(t) = meta.tombstone {
            return t;
        }
        let mid = ModuleId(meta.modules.len() as u32);
        let shared = self.new_principal_locked(&mut meta, mid, PrincipalKind::Shared);
        let global = self.new_principal_locked(&mut meta, mid, PrincipalKind::Global);
        meta.modules
            .push(ModuleInfo::new("<tombstone>".to_string(), shared, global));
        meta.tombstone = Some(shared);
        shared
    }

    /// The tombstone principal, if one has been created.
    pub fn tombstone(&self) -> Option<PrincipalId> {
        self.meta.read().expect("meta lock").tombstone
    }

    /// Whether a principal has been retired.
    pub fn is_retired(&self, p: PrincipalId) -> bool {
        self.meta.read().expect("meta lock").principals[p.0 as usize].retired
    }

    /// `(live, retired)` principal counts — the leak gauges module churn
    /// is regression-tested against.
    pub fn principal_gauges(&self) -> (u64, u64) {
        let meta = self.meta.read().expect("meta lock");
        let retired = meta.principals.iter().filter(|p| p.retired).count() as u64;
        (meta.principals.len() as u64 - retired, retired)
    }

    /// Retires every principal of a module: WRITE coverage is moved to
    /// the tombstone (never dropped — see [`RuntimeCore::ensure_tombstone`]
    /// for why dropping would reopen the indirect-call hole), CALL and
    /// REF capabilities are discarded, the module's instance registry and
    /// pointer names are cleared, and each principal is marked retired.
    /// Epochs bump per the §3.1 hierarchy as each range is revoked, so
    /// no stale cached grant of a dead principal survives.
    ///
    /// The caller must guarantee no code runs under these principals any
    /// more (the kernel's quarantine path drains in-flight executions
    /// through its RCU grace period first). A `kfree` sweep racing the
    /// transfer can at worst leave the tombstone holding coverage over a
    /// freed range — a conservative deny that the next sweep, zeroing,
    /// or transfer-grant over that range clears.
    pub fn retire_module(&self, mid: ModuleId) -> RetireSweep {
        let ts = self.ensure_tombstone();
        let mut sweep = RetireSweep::default();
        let victims: Vec<PrincipalId> = {
            let meta = self.meta.read().expect("meta lock");
            if meta.tombstone == Some(ts) && meta.principals[ts.0 as usize].module == mid {
                return sweep; // the tombstone module itself is immortal
            }
            meta.modules[mid.0 as usize]
                .all_principals()
                .filter(|&p| !meta.principals[p.0 as usize].retired)
                .collect()
        };
        for &p in &victims {
            let writes: Vec<(Word, u64)> = {
                let mut caps = self.slot(p).caps.lock().expect("caps lock");
                sweep.call_caps_dropped += caps.call.len() as u64;
                sweep.ref_caps_dropped += caps.refs.len() as u64;
                caps.call.clear();
                caps.refs.clear();
                caps.write.iter().collect()
            };
            for (addr, size) in writes {
                // Grant to the tombstone *before* revoking from the dead
                // principal: a racing indirect-call lookup may see both
                // writers (conservative) but never an uncovered window.
                self.grant(ts, RawCap::write(addr, size));
                let (moved, bumps) = self.revoke(p, RawCap::write(addr, size));
                sweep.epoch_bumps += bumps;
                if moved {
                    sweep.write_caps_moved += 1;
                }
            }
            debug_assert_eq!(
                self.cap_count(p),
                0,
                "retired principal {p:?} still holds capabilities"
            );
        }
        let mut meta = self.meta.write().expect("meta lock");
        for &p in &victims {
            meta.principals[p.0 as usize].retired = true;
            sweep.principals_retired += 1;
        }
        let m = &mut meta.modules[mid.0 as usize];
        m.instances.clear();
        m.names.clear();
        sweep
    }

    // ------------------------------------------------------- capabilities

    /// Grants a capability to a principal. WRITE grants mark the
    /// writer-set map and enter the reverse writer index (§5) under the
    /// principal's table mutex, so the index never lags the table once
    /// the call returns. Grants never bump write epochs: added authority
    /// cannot invalidate a cached positive guard decision.
    pub fn grant(&self, p: PrincipalId, cap: RawCap) {
        if cap.ctype == CapType::Write {
            self.writer_map.mark(cap.addr, cap.size);
            let mut caps = self.slot(p).caps.lock().expect("caps lock");
            // Index before table: an indirect call racing this grant may
            // see the writer early (conservative), never late.
            self.sharding
                .read()
                .expect("sharding lock")
                .add(p, cap.addr, cap.size);
            caps.grant(cap);
        } else {
            self.slot(p).caps.lock().expect("caps lock").grant(cap);
        }
    }

    /// Revokes a capability from one principal; returns whether it was
    /// held and how many write epochs were bumped. A successful WRITE
    /// revocation removes table coverage (and fixes the writer index)
    /// **before** bumping the epochs of exactly the principals whose
    /// observable coverage shrank; every other principal's guard cache
    /// survives untouched.
    pub fn revoke(&self, p: PrincipalId, cap: RawCap) -> (bool, u64) {
        let removed = {
            let mut caps = self.slot(p).caps.lock().expect("caps lock");
            let removed = caps.revoke(cap);
            if removed && cap.ctype == CapType::Write {
                self.unindex_write_locked(p, cap.addr, cap.size, &caps);
            }
            removed
        };
        let bumps = if removed && cap.ctype == CapType::Write {
            self.bump_write_epochs(p)
        } else {
            0
        };
        (removed, bumps)
    }

    /// Bumps the write epoch of `p` and of every principal whose
    /// write-guard coverage can *observe* `p`'s WRITE table through the
    /// §3.1 hierarchy fallbacks:
    ///
    /// - revoking from an **instance** also invalidates the module's
    ///   global principal (it unions every instance);
    /// - revoking from the **shared** principal invalidates every
    ///   instance (they fall back to shared) and the global principal;
    /// - revoking from the **global** principal invalidates only itself
    ///   (nobody falls back to global).
    ///
    /// Runs under the `meta` read lock so instances created concurrently
    /// (under the write lock) are either fully born and swept, or born
    /// after the sweep — in which case their tables were probed only
    /// after this revocation's table update.
    fn bump_write_epochs(&self, p: PrincipalId) -> u64 {
        let meta = self.meta.read().expect("meta lock");
        let pm = meta.principals[p.0 as usize];
        let mut bumps = 0u64;
        let mut bump = |q: PrincipalId| {
            self.slot(q).epoch.fetch_add(1, Ordering::AcqRel);
            bumps += 1;
        };
        bump(p);
        match pm.kind {
            PrincipalKind::Global => {}
            PrincipalKind::Instance => {
                bump(meta.modules[pm.module.0 as usize].global);
            }
            PrincipalKind::Shared => {
                let m = &meta.modules[pm.module.0 as usize];
                bump(m.global);
                for &q in &m.instances {
                    bump(q);
                }
            }
        }
        bumps
    }

    /// Drops `p` from the writer index over `[addr, addr+size)` while
    /// reinstating whatever coverage `p`'s *remaining* grants still have
    /// there (the index stores merged coverage, so revoking one of two
    /// overlapping grants must not erase the survivor). The caller holds
    /// `p`'s caps mutex — `caps` is the post-removal table — which keeps
    /// the index in lockstep with the table for each principal; the
    /// removal and the reinstatement are applied per shard under one
    /// hold of the shard's lock ([`Sharding::replace`]), so a racing
    /// indirect-call lookup can never see the survivor's coverage
    /// transiently absent.
    fn unindex_write_locked(&self, p: PrincipalId, addr: Word, size: u64, caps: &CapSet) {
        // Invalidate deferred zero-notes overlapping the removed window
        // *before* the splice: a drain that observes the post-splice
        // index must also observe this bump (see `StripedWriterMap`).
        self.writer_map.note_revoked(addr, size);
        let end = addr.saturating_add(size);
        // Clip the survivors to the removed window: coverage outside it
        // never left. Small: a revocation rarely overlaps many grants.
        let residuals: Vec<(Word, Word)> = caps
            .write
            .iter_overlapping(addr, size)
            .map(|(a, s)| (a.max(addr), (a.saturating_add(s)).min(end)))
            .filter(|&(lo, hi)| lo < hi)
            .collect();
        self.sharding
            .read()
            .expect("sharding lock")
            .replace(p, addr, size, &residuals);
    }

    /// Revokes a capability from **every** principal in the system —
    /// `transfer` semantics (§3.3): no stale copies survive. Retired
    /// principals hold nothing and are skipped; the tombstone is *not*
    /// retired and is visited like any writer (this is one of the
    /// channels that drains stale tombstone coverage). Returns the total
    /// epoch bumps.
    pub fn revoke_everywhere(&self, cap: RawCap) -> u64 {
        let live: Vec<PrincipalId> = {
            let meta = self.meta.read().expect("meta lock");
            (0..meta.principals.len() as u32)
                .map(PrincipalId)
                .filter(|p| !meta.principals[p.0 as usize].retired)
                .collect()
        };
        let mut bumps = 0;
        for p in live {
            bumps += self.revoke(p, cap).1;
        }
        bumps
    }

    /// `transfer` semantics for a WRITE capability: revoke `cap` from
    /// everyone, then grant it to `dst` (if any). When the reverse
    /// writer index shows **at most one** holder over the range — the
    /// per-packet skb case — the grant moves principal-to-principal
    /// with one shard substitution splice and one epoch-bump set,
    /// instead of walking every live principal's table
    /// ([`RuntimeCore::revoke_everywhere`]). Returns
    /// `(fast_path_taken, epoch_bumps)`.
    ///
    /// Equivalence with the sweep: holding the exact grant implies
    /// overlapping index coverage, so a principal absent from
    /// `collect_writers` cannot hold `cap` — revoking from the one
    /// indexed holder revokes everything the full walk would have. A
    /// grant racing in after the holder scan survives either path (the
    /// sweep visits principals one at a time and can equally miss it);
    /// the substitution itself runs under the source's caps mutex with
    /// each shard's remove-and-reinstate atomic per shard, and the
    /// destination enters the index *before* its table grant (the same
    /// conservative index-before-table order as [`RuntimeCore::grant`]).
    pub fn transfer_write(&self, cap: RawCap, dst: Option<PrincipalId>) -> (bool, u64) {
        debug_assert_eq!(cap.ctype, CapType::Write);
        let mut holders = Vec::new();
        self.collect_writers(cap.addr, cap.size, &mut holders);
        if holders.len() > 1 {
            let bumps = self.revoke_everywhere(cap);
            if let Some(d) = dst {
                self.grant(d, cap);
            }
            return (false, bumps);
        }
        let mut bumps = 0;
        let mut dst_indexed = false;
        if let Some(&h) = holders.first() {
            let removed = {
                let mut caps = self.slot(h).caps.lock().expect("caps lock");
                let removed = caps.revoke(cap);
                if removed {
                    // One splice: src out (residuals back), dst in. The
                    // range's granules stay marked throughout — the
                    // original grant marked them and `clear_zeroed`
                    // keeps covered granules — so no re-mark is needed.
                    self.writer_map.note_revoked(cap.addr, cap.size);
                    let end = cap.addr.saturating_add(cap.size);
                    let residuals: Vec<(Word, Word)> = caps
                        .write
                        .iter_overlapping(cap.addr, cap.size)
                        .map(|(a, s)| (a.max(cap.addr), (a.saturating_add(s)).min(end)))
                        .filter(|&(lo, hi)| lo < hi)
                        .collect();
                    self.sharding
                        .read()
                        .expect("sharding lock")
                        .substitute(h, dst, cap.addr, cap.size, &residuals);
                    dst_indexed = true;
                }
                removed
            };
            if removed {
                bumps = self.bump_write_epochs(h);
            }
        }
        if let Some(d) = dst {
            if dst_indexed {
                // Already indexed (and marked) by the substitution: only
                // the table grant remains. Index-before-table holds.
                self.slot(d).caps.lock().expect("caps lock").grant(cap);
            } else {
                self.grant(d, cap);
            }
        }
        (true, bumps)
    }

    /// Revokes all WRITE capabilities overlapping `[addr, addr+size)` from
    /// every principal that holds any (used by `kfree`: freed memory must
    /// have no outstanding capabilities). The per-shard principal-presence
    /// hint bounds the sweep to the freed region's writers instead of
    /// walking every principal's table; callers in debug builds assert
    /// the hint against the full walk (see `Runtime`).
    pub fn revoke_write_overlapping_everywhere(&self, addr: Word, size: u64) -> KfreeSweep {
        let total = self.principal_count() as u64;
        let hint = self
            .sharding
            .read()
            .expect("sharding lock")
            .present_over(addr, size);
        let mut sweep = KfreeSweep {
            epoch_bumps: 0,
            visited: hint.len() as u64,
            skipped: total.saturating_sub(hint.len() as u64),
        };
        for &p in &hint {
            let span = {
                let mut caps = self.slot(p).caps.lock().expect("caps lock");
                let (_, span) = caps.write.revoke_overlapping_span(addr, size);
                // A partially intersected grant is revoked whole, so the
                // lost coverage can reach beyond [addr, addr+size):
                // un-index the actual extent of what was removed.
                if let Some((lo, hi)) = span {
                    self.unindex_write_locked(p, lo, hi - lo, &caps);
                }
                span
            };
            if span.is_some() {
                sweep.epoch_bumps += self.bump_write_epochs(p);
            }
        }
        sweep
    }

    /// Revokes all of **one** principal's WRITE coverage overlapping
    /// `[addr, addr+size)`, partially intersected grants whole (the
    /// [`RuntimeCore::revoke_write_overlapping_everywhere`] semantics
    /// applied to a single table). Module teardown uses this to return
    /// the kernel-stack grants of §3.2 before retirement moves the rest
    /// of a dead module's coverage to the tombstone: stacks outlive the
    /// module and must not stay poisoned. Returns the epoch bumps.
    pub fn revoke_write_overlapping(&self, p: PrincipalId, addr: Word, size: u64) -> u64 {
        let span = {
            let mut caps = self.slot(p).caps.lock().expect("caps lock");
            let (_, span) = caps.write.revoke_overlapping_span(addr, size);
            if let Some((lo, hi)) = span {
                self.unindex_write_locked(p, lo, hi - lo, &caps);
            }
            span
        };
        if span.is_some() {
            self.bump_write_epochs(p)
        } else {
            0
        }
    }

    /// Ownership test with the principal-hierarchy semantics of §3.1:
    /// an instance principal falls back to the module's shared principal;
    /// the global principal owns anything any principal of its module
    /// owns. Locks one capability table at a time.
    pub fn owns(&self, p: PrincipalId, cap: RawCap) -> bool {
        let meta = self.meta.read().expect("meta lock");
        let pm = meta.principals[p.0 as usize];
        let probe = |q: PrincipalId| self.slot(q).caps.lock().expect("caps lock").owns(cap);
        match pm.kind {
            PrincipalKind::Shared => probe(p),
            PrincipalKind::Instance => probe(p) || probe(meta.modules[pm.module.0 as usize].shared),
            PrincipalKind::Global => meta.modules[pm.module.0 as usize]
                .all_principals()
                .any(probe),
        }
    }

    /// Ownership test for an optional principal context (`None` = the
    /// trusted core kernel, which owns everything).
    pub fn ctx_owns(&self, ctx: PrincipalCtx, cap: RawCap) -> bool {
        match ctx {
            None => true,
            Some((_, p)) => self.owns(p, cap),
        }
    }

    /// The covering interval behind a successful WRITE ownership test,
    /// with the principal-hierarchy fallbacks of [`RuntimeCore::owns`].
    pub(crate) fn write_covering(
        &self,
        p: PrincipalId,
        addr: Word,
        len: u64,
    ) -> Option<(Word, Word)> {
        let meta = self.meta.read().expect("meta lock");
        let pm = meta.principals[p.0 as usize];
        let probe = |q: PrincipalId| {
            self.slot(q)
                .caps
                .lock()
                .expect("caps lock")
                .write
                .covering(addr, len)
        };
        match pm.kind {
            PrincipalKind::Shared => probe(p),
            PrincipalKind::Instance => {
                probe(p).or_else(|| probe(meta.modules[pm.module.0 as usize].shared))
            }
            PrincipalKind::Global => meta.modules[pm.module.0 as usize]
                .all_principals()
                .find_map(probe),
        }
    }

    /// True if `p`'s own table has a grant overlapping the range (debug
    /// hook for the kfree hint assertion).
    pub fn write_overlaps(&self, p: PrincipalId, addr: Word, len: u64) -> bool {
        self.slot(p)
            .caps
            .lock()
            .expect("caps lock")
            .write
            .overlaps(addr, len)
    }

    /// Number of capabilities a principal holds directly (diagnostics).
    pub fn cap_count(&self, p: PrincipalId) -> usize {
        self.slot(p).caps.lock().expect("caps lock").len()
    }

    // ---------------------------------------------------------- functions

    /// Registers a function address with its annotation hash.
    pub fn register_function(&self, addr: Word, meta: FnMeta) {
        self.fns.write().expect("fns lock").insert(addr, meta);
    }

    /// Unregisters a function address (module-window reuse: the dead
    /// tenant's annotation hashes must not answer for the new one's
    /// addresses).
    pub fn unregister_function(&self, addr: Word) {
        self.fns.write().expect("fns lock").remove(&addr);
    }

    /// Looks up a registered function (cloned out of the registry).
    pub fn function_at(&self, addr: Word) -> Option<FnMeta> {
        self.fns.read().expect("fns lock").get(&addr).cloned()
    }

    /// The annotation hash of a registered function (the indirect-call
    /// hot path: no clone).
    pub fn function_ahash(&self, addr: Word) -> Option<u64> {
        self.fns
            .read()
            .expect("fns lock")
            .get(&addr)
            .map(|m| m.ahash)
    }

    /// Principals (from any module) holding WRITE coverage of any byte of
    /// the 8-byte slot at `addr` — the indirect-call slow path, answered
    /// by the reverse writer index in O(log intervals + writers) instead
    /// of the paper's global principal-list traversal (§5). Appends the
    /// deduplicated writers to `out`.
    pub fn collect_writers(&self, addr: Word, len: u64, out: &mut Vec<PrincipalId>) {
        self.sharding
            .read()
            .expect("sharding lock")
            .collect_writers(addr, len, out);
    }

    /// True if any writer interval overlaps `[addr, addr+len)`.
    pub fn index_overlaps(&self, addr: Word, len: u64) -> bool {
        self.sharding
            .read()
            .expect("sharding lock")
            .overlaps(addr, len)
    }

    /// The kfree presence hint for a range (diagnostics/tests).
    pub fn present_over(&self, addr: Word, len: u64) -> Vec<PrincipalId> {
        self.sharding
            .read()
            .expect("sharding lock")
            .present_over(addr, len)
    }

    /// `lxfi_check_indcall(pptr, ahash)` (§4.1): validates a kernel
    /// indirect call through the function-pointer slot at `slot` whose
    /// declared pointer type hashes to `sig_hash`. `target` is the value
    /// currently stored in the slot. `scratch` is the caller's reusable
    /// writer buffer (handles and the facade keep one so the steady
    /// state allocates nothing).
    ///
    /// Fast path: if the writer-set bitmap proves no module was ever
    /// granted WRITE over the slot, the call is kernel-authored and needs
    /// no capability check.
    pub fn check_indcall(
        &self,
        env: &mut crate::handle::GuardEnv<'_>,
        slot: Word,
        target: Word,
        sig_hash: u64,
    ) -> Result<(), Violation> {
        if env.fastpath && !self.writer_map.maybe_written(slot) {
            let c = env.costs.ind_call_fast;
            env.stats.record(GuardKind::KernelIndCall, c);
            return Ok(());
        }
        // Past the bitmap: the reverse-index lookup runs, so the
        // slow-path cost applies even when it finds no writers (a benign
        // bitmap false positive, §5).
        let c = env.costs.ind_call_slow;
        env.stats.record(GuardKind::KernelIndCall, c);
        // First check (§4.1): every writer principal must hold a CALL
        // capability for the target. This is what rejects user-space
        // targets and un-imported kernel functions like `detach_pid`.
        env.scratch.clear();
        self.collect_writers(slot, 8, env.scratch);
        for &w in env.scratch.iter() {
            let module = self.principal_module(w);
            env.stats.record_indcall_module(module, c);
            if !self.owns(w, RawCap::call(target)) {
                return Err(Violation::IndCallUnauthorized {
                    slot,
                    target,
                    writer: w,
                });
            }
        }
        if env.scratch.is_empty() {
            return Ok(());
        }
        // Second check (§4.1): the annotations of the stored function and
        // of the function-pointer type must match, so a module cannot
        // launder a function through a differently-annotated slot.
        let fn_hash = self
            .function_ahash(target)
            .ok_or(Violation::NotAFunction { target })?;
        if fn_hash != sig_hash {
            return Err(Violation::AnnotationMismatch { sig_hash, fn_hash });
        }
        Ok(())
    }

    // ------------------------------------------------------ writer tracking

    /// Notes that `[addr, addr+len)` was zeroed (allocator or kernel
    /// `memset`): writer-set bits clear unless a principal still holds
    /// WRITE coverage. Returns `false` when the lock-free maybe-marked
    /// pre-check proved every touched stripe clean and the call did no
    /// locked work at all (the all-clean fast skip).
    pub fn note_zeroed(&self, addr: Word, len: u64) -> bool {
        if !self.writer_map.maybe_marked_over(addr, len) {
            return false;
        }
        // A granule stays marked while any principal holds WRITE coverage
        // of any byte in it (clearing would be a false negative). The
        // reverse index answers this in one window search instead of a
        // per-granule walk of every principal.
        let sharding = self.sharding.read().expect("sharding lock");
        self.writer_map
            .clear_zeroed(addr, len, |granule| sharding.overlaps(granule, 64));
        true
    }

    /// Samples a deferral token for a zero-note over the range, if it
    /// fits in one writer-map stripe (see
    /// [`StripedWriterMap::defer_token`]). Lock-free.
    pub(crate) fn zero_note_token(&self, addr: Word, len: u64) -> Option<ZeroNoteToken> {
        self.writer_map.defer_token(addr, len)
    }

    /// Applies a deferred zero-note; `None` means it was dropped as
    /// stale (bits conservatively stay set).
    pub(crate) fn drain_zero_note(
        &self,
        addr: Word,
        len: u64,
        token: ZeroNoteToken,
    ) -> Option<u64> {
        let sharding = self.sharding.read().expect("sharding lock");
        self.writer_map
            .try_drain_note(addr, len, token, |granule| sharding.overlaps(granule, 64))
    }

    /// Direct writer-map marking (used when a module is loaded: its
    /// writable sections may contain function pointers the kernel will
    /// invoke, §5).
    pub fn mark_written(&self, addr: Word, len: u64) {
        self.writer_map.mark(addr, len);
    }

    /// True if the writer-set fast path would skip checks for `addr`.
    pub fn writer_clean(&self, addr: Word) -> bool {
        !self.writer_map.maybe_written(addr)
    }

    /// Gauge: total marked writer-map granules (lock-free stripe census).
    pub fn marked_granules(&self) -> u64 {
        self.writer_map.marked_granules()
    }

    // ---------------------------------------------------------- iterators

    /// Interns a REF type name.
    pub fn ref_type(&self, name: &str) -> RefTypeId {
        let mut names = self.names.write().expect("names lock");
        if let Some(&id) = names.ref_type_ids.get(name) {
            return id;
        }
        let id = RefTypeId(names.ref_types.len() as u32);
        names.ref_types.push(name.to_string());
        names.ref_type_ids.insert(name.to_string(), id);
        id
    }

    /// The name of an interned REF type.
    pub fn ref_type_name(&self, id: RefTypeId) -> String {
        self.names.read().expect("names lock").ref_types[id.0 as usize].clone()
    }

    /// Interns an iterator name, reserving an empty slot if the iterator
    /// has not been registered yet (annotations may be compiled before
    /// the module supplying the iterator loads).
    pub fn iterator_id(&self, name: &str) -> IteratorId {
        let mut names = self.names.write().expect("names lock");
        if let Some(&id) = names.iterator_ids.get(name) {
            return id;
        }
        let id = IteratorId(names.iterators.len() as u32);
        names.iterators.push(None);
        names.iterator_names.push(name.to_string());
        names.iterator_ids.insert(name.to_string(), id);
        id
    }

    /// The name an iterator id was interned under (diagnostics).
    pub fn iterator_name(&self, id: IteratorId) -> String {
        self.names.read().expect("names lock").iterator_names[id.0 as usize].clone()
    }

    /// Registers a capability iterator under `name`; returns the interned
    /// id compiled annotations reference it by.
    pub fn register_iterator(&self, name: &str, f: IteratorFn) -> IteratorId {
        let id = self.iterator_id(name);
        self.names.write().expect("names lock").iterators[id.0 as usize] = Some(Arc::new(f));
        id
    }

    /// Runs a registered iterator by interned id (the enforcement path —
    /// no name lookup). The iterator function is cloned out of the
    /// registry (an `Arc` bump) so no lock is held while it walks memory.
    pub fn run_iterator_id(
        &self,
        id: IteratorId,
        mem: &AddressSpace,
        arg: Word,
    ) -> Result<Vec<EmittedCap>, Violation> {
        let f = self.names.read().expect("names lock").iterators[id.0 as usize]
            .clone()
            .ok_or_else(|| Violation::UnknownIterator {
                name: self.iterator_name(id),
            })?;
        let mut out = Vec::new();
        f(mem, arg, &mut out).map_err(|why| Violation::IteratorFailed {
            name: self.iterator_name(id),
            why,
        })?;
        Ok(out)
    }

    /// Runs a registered iterator by name (registration-time / test API;
    /// enforcement goes through [`RuntimeCore::run_iterator_id`]).
    pub fn run_iterator(
        &self,
        name: &str,
        mem: &AddressSpace,
        arg: Word,
    ) -> Result<Vec<EmittedCap>, Violation> {
        let id = self
            .names
            .read()
            .expect("names lock")
            .iterator_ids
            .get(name)
            .copied()
            .ok_or_else(|| Violation::UnknownIterator {
                name: name.to_string(),
            })?;
        self.run_iterator_id(id, mem, arg)
    }

    /// Number of registered iterators (annotation census, §8.2).
    /// Interned-but-unregistered slots do not count.
    pub fn iterator_count(&self) -> usize {
        self.names
            .read()
            .expect("names lock")
            .iterators
            .iter()
            .filter(|f| f.is_some())
            .count()
    }

    // ------------------------------------------------------------- consts

    /// Interns a constant name, reserving an undefined slot if the
    /// constant has not been defined yet (evaluating an undefined slot
    /// reports an unknown identifier, matching by-name lookup).
    pub fn const_id(&self, name: &str) -> ConstId {
        let mut names = self.names.write().expect("names lock");
        if let Some(&id) = names.const_ids.get(name) {
            return id;
        }
        let id = ConstId(names.const_values.len() as u32);
        names.const_values.push(None);
        names.const_names.push(name.to_string());
        names.const_ids.insert(name.to_string(), id);
        id
    }

    /// The value of an interned constant, if defined.
    pub fn const_value(&self, id: ConstId) -> Option<i64> {
        self.names.read().expect("names lock").const_values[id.0 as usize]
    }

    /// The name a constant id was interned under (diagnostics).
    pub fn const_name(&self, id: ConstId) -> String {
        self.names.read().expect("names lock").const_names[id.0 as usize].clone()
    }

    /// Defines a named kernel constant usable in annotation expressions.
    pub fn define_const(&self, name: &str, value: i64) {
        let id = self.const_id(name);
        self.names.write().expect("names lock").const_values[id.0 as usize] = Some(value);
    }

    // ----------------------------------------------------- sharding admin

    /// Reconfigures the reverse writer index's shard boundaries (address
    /// split points — typically the kernel layout's region bases and
    /// module windows) and rebuilds the index from every principal's
    /// live WRITE grants. **Not** safe to run concurrently with
    /// capability traffic; the simulated kernel does it once at boot,
    /// before any module loads.
    pub fn set_shard_boundaries(&self, boundaries: Vec<Word>) {
        // Snapshot every principal's grants first: taking the sharding
        // write lock while holding a caps mutex would invert the
        // caps → sharding order the mutation paths use.
        let n = self.principal_count();
        let mut grants: Vec<(PrincipalId, Vec<(Word, u64)>)> = Vec::with_capacity(n);
        for i in 0..n {
            let p = PrincipalId(i as u32);
            let caps = self.slot(p).caps.lock().expect("caps lock");
            grants.push((p, caps.write.iter().collect()));
        }
        // The allocation gauge is documented monotonic; fold the retired
        // index's count in so a rebuild never steps it backwards.
        let prior = self.index_sets_ever_interned();
        let fresh = Sharding::new(boundaries, prior);
        for (p, gs) in grants {
            for (a, s) in gs {
                fresh.add(p, a, s);
            }
        }
        *self.sharding.write().expect("sharding lock") = fresh;
    }

    /// Number of writer-index shards.
    pub fn index_shard_count(&self) -> usize {
        self.sharding.read().expect("sharding lock").shards.len()
    }

    /// The configured shard split points.
    pub fn index_boundaries(&self) -> Vec<Word> {
        self.sharding
            .read()
            .expect("sharding lock")
            .boundaries
            .clone()
    }

    /// Live intervals across all shards (diagnostics).
    pub fn index_interval_count(&self) -> usize {
        let sharding = self.sharding.read().expect("sharding lock");
        sharding
            .shards
            .iter()
            .map(|s| s.lock().expect("shard lock").interval_count())
            .sum()
    }

    /// Snapshot of every live interval as `(start, end, writers)` in
    /// address order (diagnostics; pairs with
    /// [`index_interval_count`](Self::index_interval_count) when a leak
    /// gauge drifts and the offending range needs naming).
    pub fn index_intervals_snapshot(&self) -> Vec<(Word, Word, Vec<PrincipalId>)> {
        let sharding = self.sharding.read().expect("sharding lock");
        let interner = sharding.interner.lock().expect("interner lock");
        let mut out = Vec::new();
        for s in &sharding.shards {
            let s = s.lock().expect("shard lock");
            for (a, b, w) in s.intervals(&interner) {
                out.push((a, b, w.to_vec()));
            }
        }
        out
    }

    /// Live interned writer sets, including the pinned empty set.
    pub fn index_set_count(&self) -> usize {
        let sharding = self.sharding.read().expect("sharding lock");
        let live = sharding.interner.lock().expect("interner lock").live();
        live
    }

    /// Writer-set slot allocations ever performed (monotonic across
    /// rebuilds).
    pub fn index_sets_ever_interned(&self) -> u64 {
        let sharding = self.sharding.read().expect("sharding lock");
        let ever = sharding.interner.lock().expect("interner lock").ever();
        sharding.ever_carried + ever
    }

    /// Interner slot capacity (high-water mark of simultaneously live
    /// sets).
    pub fn index_set_slot_capacity(&self) -> usize {
        let sharding = self.sharding.read().expect("sharding lock");
        let cap = sharding.interner.lock().expect("interner lock").capacity();
        cap
    }

    /// Currently recycled (free) interner slots.
    pub fn index_free_set_slots(&self) -> usize {
        let sharding = self.sharding.read().expect("sharding lock");
        let free = sharding
            .interner
            .lock()
            .expect("interner lock")
            .free_slots();
        free
    }

    /// Panics unless every shard's structural invariants hold and the
    /// shared interner's refcounts match the interval references
    /// (test/proptest hook).
    #[doc(hidden)]
    pub fn check_index_invariants(&self) {
        let sharding = self.sharding.read().expect("sharding lock");
        // Shards before interner, matching the splice lock order (the
        // interner is a leaf — taking it first could deadlock against a
        // concurrent phase-split mutation holding a shard).
        let shards: Vec<_> = sharding
            .shards
            .iter()
            .map(|s| s.lock().expect("shard lock"))
            .collect();
        let interner = sharding.interner.lock().expect("interner lock");
        let mut refs = vec![0u32; interner.capacity()];
        for (si, sh) in shards.iter().enumerate() {
            sh.check_invariants(
                &interner,
                &mut refs,
                shard_lo(&sharding.boundaries, si),
                shard_hi(&sharding.boundaries, si),
            );
        }
        interner.check_consistency(&refs);
    }

    // -------------------------------------------------------------- stats

    /// Folds a handle's (or any) stats into the core's global stats.
    pub fn merge_stats(&self, s: &GuardStats) {
        self.stats.lock().expect("stats lock").merge(s);
    }

    /// A snapshot of the core's merged global stats.
    pub fn global_stats(&self) -> GuardStats {
        self.stats.lock().expect("stats lock").clone()
    }

    /// Zeroes the core's merged global stats (benchmark phases).
    pub fn reset_global_stats(&self) {
        self.stats.lock().expect("stats lock").reset();
    }
}

// ---------------------------------------------------------------- facade

/// The single-threaded LXFI runtime facade: the historical `&mut self`
/// API over an [`Arc<RuntimeCore>`], with one guard lane (shadow stack,
/// kernel-stack window, private epoch cache) per registered
/// [`ThreadId`] and a plain [`GuardStats`] field benches read and reset
/// directly. [`Runtime::share`] exposes the core for spawning
/// [`crate::GuardHandle`]s on real threads.
pub struct Runtime {
    core: Arc<RuntimeCore>,
    lanes: HashMap<ThreadId, GuardState<DEFAULT_WAYS>>,
    /// Reusable writer buffer for the indirect-call slow path.
    scratch: Vec<PrincipalId>,
    /// Guard counters (public: benches read and reset them).
    pub stats: GuardStats,
    /// Deterministic guard costs.
    pub costs: GuardCosts,
    /// Ablation switch: when false, every kernel indirect call takes the
    /// full capability-check slow path even when the writer-set bitmap
    /// proves the slot clean. Used to quantify how much the writer-set
    /// optimization (§5) saves; always true in normal operation.
    pub writer_fastpath: bool,
    /// Ablation/test switch: when false, [`Runtime::check_write`] skips
    /// the epoch-validated guard cache entirely and always probes the
    /// interval tables. The epoch-cache property test drives a cached
    /// and an uncached runtime through identical traffic and asserts
    /// identical decisions; benches use it to price the uncached probe.
    pub guard_cache_enabled: bool,
    /// Deferred zero-notes: ranges the caller has zeroed whose bitmap
    /// clear is postponed until a quiescent point ([`Runtime::writer_clean`],
    /// [`Runtime::mark_written`], buffer overflow, or an explicit
    /// [`Runtime::flush_zero_notes`]). Each entry carries the generation
    /// token that proves the clear is still equivalent to an immediate
    /// [`RuntimeCore::note_zeroed`]; stale tokens are dropped, never
    /// applied. Entries are deduplicated by exact `(addr, len)` so the
    /// steady-state allocator pattern (same buffer freed and reused)
    /// keeps one fresh token per range.
    zero_notes: Vec<(Word, u64, ZeroNoteToken)>,
}

/// Deferred zero-notes per facade before a forced drain.
const ZERO_NOTE_BUFFER: usize = 32;

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl Runtime {
    /// Creates an empty runtime over a fresh single-shard core.
    pub fn new() -> Self {
        Self::with_shard_boundaries(Vec::new())
    }

    /// Creates an empty runtime whose core is sharded at the given split
    /// points from the start (the simulated kernel passes its layout's
    /// region bases here at boot).
    pub fn with_shard_boundaries(boundaries: Vec<Word>) -> Self {
        Self::from_core(Arc::new(RuntimeCore::with_shard_boundaries(boundaries)))
    }

    /// Wraps an existing shared core in a facade.
    pub fn from_core(core: Arc<RuntimeCore>) -> Self {
        Runtime {
            core,
            lanes: HashMap::new(),
            scratch: Vec::new(),
            stats: GuardStats::new(),
            costs: GuardCosts::default(),
            writer_fastpath: true,
            guard_cache_enabled: true,
            zero_notes: Vec::new(),
        }
    }

    /// The shared core, for spawning [`crate::GuardHandle`]s on other
    /// threads.
    pub fn share(&self) -> Arc<RuntimeCore> {
        Arc::clone(&self.core)
    }

    /// A borrowed view of the shared core.
    pub fn core(&self) -> &RuntimeCore {
        &self.core
    }

    /// See [`RuntimeCore::set_shard_boundaries`].
    pub fn set_shard_boundaries(&mut self, boundaries: Vec<Word>) {
        self.core.set_shard_boundaries(boundaries);
        self.update_writer_set_gauges();
    }

    // ------------------------------------------------------------ modules

    /// Registers a module, creating its shared and global principals.
    pub fn register_module(&mut self, name: &str) -> ModuleId {
        let mid = self.core.register_module(name);
        let (live, retired) = self.core.principal_gauges();
        self.stats.principals_live = live;
        self.stats.principals_retired = retired;
        mid
    }

    /// Number of registered modules.
    pub fn module_count(&self) -> usize {
        self.core.module_count()
    }

    /// The module's shared principal.
    pub fn shared_principal(&self, id: ModuleId) -> PrincipalId {
        self.core.shared_principal(id)
    }

    /// The module's global principal.
    pub fn global_principal(&self, id: ModuleId) -> PrincipalId {
        self.core.global_principal(id)
    }

    /// The kind of a principal.
    pub fn principal_kind(&self, p: PrincipalId) -> PrincipalKind {
        self.core.principal_kind(p)
    }

    /// The module a principal belongs to.
    pub fn principal_module(&self, p: PrincipalId) -> ModuleId {
        self.core.principal_module(p)
    }

    /// See [`RuntimeCore::principal_for_name`].
    pub fn principal_for_name(&mut self, module: ModuleId, name: Word) -> PrincipalId {
        let p = self.core.principal_for_name(module, name);
        let (live, retired) = self.core.principal_gauges();
        self.stats.principals_live = live;
        self.stats.principals_retired = retired;
        p
    }

    /// See [`RuntimeCore::princ_alias`].
    pub fn princ_alias(
        &mut self,
        module: ModuleId,
        existing_name: Word,
        new_name: Word,
    ) -> Result<(), Violation> {
        self.core.princ_alias(module, existing_name, new_name)
    }

    // ------------------------------------------------------- capabilities

    /// Interns a REF type name.
    pub fn ref_type(&mut self, name: &str) -> RefTypeId {
        self.core.ref_type(name)
    }

    /// The name of an interned REF type.
    pub fn ref_type_name(&self, id: RefTypeId) -> String {
        self.core.ref_type_name(id)
    }

    /// See [`RuntimeCore::grant`].
    pub fn grant(&mut self, p: PrincipalId, cap: RawCap) {
        self.core.grant(p, cap);
        if cap.ctype == CapType::Write {
            self.update_writer_set_gauges();
        }
    }

    /// See [`RuntimeCore::revoke`]; epoch bumps are accounted into this
    /// facade's [`GuardStats`].
    pub fn revoke(&mut self, p: PrincipalId, cap: RawCap) -> bool {
        let (removed, bumps) = self.core.revoke(p, cap);
        self.stats.epoch_bumps += bumps;
        if removed && cap.ctype == CapType::Write {
            self.update_writer_set_gauges();
        }
        removed
    }

    /// The current write-guard epoch of a principal (diagnostics/tests).
    pub fn write_epoch(&self, p: PrincipalId) -> u64 {
        self.core.write_epoch(p)
    }

    /// Refreshes the writer-set GC gauges in [`GuardStats`] from the
    /// reverse index's interners (called after every index mutation),
    /// and the principal-population gauges from the registry.
    fn update_writer_set_gauges(&mut self) {
        self.stats.writer_sets_live = self.core.index_set_count() as u64;
        self.stats.writer_sets_ever = self.core.index_sets_ever_interned();
        let (live, retired) = self.core.principal_gauges();
        self.stats.principals_live = live;
        self.stats.principals_retired = retired;
    }

    /// See [`RuntimeCore::retire_module`]; epoch bumps are accounted into
    /// this facade's [`GuardStats`] and the gauges refreshed.
    pub fn retire_module(&mut self, mid: ModuleId) -> RetireSweep {
        let sweep = self.core.retire_module(mid);
        self.stats.epoch_bumps += sweep.epoch_bumps;
        self.update_writer_set_gauges();
        sweep
    }

    /// See [`RuntimeCore::ensure_tombstone`].
    pub fn ensure_tombstone(&mut self) -> PrincipalId {
        let t = self.core.ensure_tombstone();
        self.update_writer_set_gauges();
        t
    }

    /// See [`RuntimeCore::revoke_everywhere`].
    pub fn revoke_everywhere(&mut self, cap: RawCap) {
        let bumps = self.core.revoke_everywhere(cap);
        self.stats.epoch_bumps += bumps;
        if bumps > 0 {
            self.update_writer_set_gauges();
        }
    }

    /// Moves `cap` from whoever holds it to `dst` (annotation `transfer`
    /// semantics: revoke everywhere, then grant to the destination).
    ///
    /// WRITE capabilities take [`RuntimeCore::transfer_write`], which
    /// splices the single holder's index coverage to the destination in
    /// one shard pass when the reverse index shows at most one holder —
    /// the common per-packet case (counted in
    /// [`GuardStats::transfer_fast`]). Multi-holder WRITE caps and every
    /// non-WRITE cap fall back to the full revoke-then-grant sweep
    /// (counted in [`GuardStats::transfer_slow`]).
    pub fn transfer_cap(&mut self, cap: RawCap, dst: Option<PrincipalId>) {
        if cap.ctype == CapType::Write {
            let (fast, bumps) = self.core.transfer_write(cap, dst);
            self.stats.epoch_bumps += bumps;
            if fast {
                self.stats.transfer_fast += 1;
            } else {
                self.stats.transfer_slow += 1;
            }
            self.update_writer_set_gauges();
        } else {
            self.stats.transfer_slow += 1;
            let bumps = self.core.revoke_everywhere(cap);
            self.stats.epoch_bumps += bumps;
            if let Some(d) = dst {
                self.core.grant(d, cap);
            }
        }
    }

    /// See [`RuntimeCore::revoke_write_overlapping_everywhere`]. In debug
    /// builds the per-shard presence hint is asserted against the full
    /// walk: after the sweep no principal — hinted or not — may retain
    /// an overlapping grant.
    pub fn revoke_write_overlapping_everywhere(&mut self, addr: Word, size: u64) {
        let sweep = self.core.revoke_write_overlapping_everywhere(addr, size);
        self.stats.epoch_bumps += sweep.epoch_bumps;
        self.stats.kfree_hint_visited += sweep.visited;
        self.stats.kfree_hint_skipped += sweep.skipped;
        if sweep.epoch_bumps > 0 {
            self.update_writer_set_gauges();
        }
        #[cfg(debug_assertions)]
        if size > 0 && self.core.kfree_cross_check_enabled() {
            for i in 0..self.core.principal_count() {
                debug_assert!(
                    !self.core.write_overlaps(PrincipalId(i as u32), addr, size),
                    "kfree hint missed principal {i}: a grant overlapping \
                     [{addr:#x}, +{size}) survived the sweep"
                );
            }
        }
    }

    /// See [`RuntimeCore::revoke_write_overlapping`].
    pub fn revoke_write_overlapping(&mut self, p: PrincipalId, addr: Word, size: u64) {
        let bumps = self.core.revoke_write_overlapping(p, addr, size);
        self.stats.epoch_bumps += bumps;
        if bumps > 0 {
            self.update_writer_set_gauges();
        }
    }

    /// Ownership test (§3.1 hierarchy semantics).
    pub fn owns(&self, p: PrincipalId, cap: RawCap) -> bool {
        self.core.owns(p, cap)
    }

    /// Ownership test for an optional principal context.
    pub fn ctx_owns(&self, ctx: PrincipalCtx, cap: RawCap) -> bool {
        self.core.ctx_owns(ctx, cap)
    }

    /// Number of capabilities a principal holds directly (diagnostics).
    pub fn cap_count(&self, p: PrincipalId) -> usize {
        self.core.cap_count(p)
    }

    // ------------------------------------------------------------ threads

    /// Registers a kernel thread and its stack range (the module receives
    /// implicit WRITE access to the current kernel stack, §3.2). Each
    /// thread gets its own guard lane: shadow stack plus a private
    /// epoch-validated write-guard cache.
    pub fn register_thread(&mut self, t: ThreadId, stack_base: Word, stack_len: u64) {
        let mut lane = GuardState::new();
        lane.kstack = Some((stack_base, stack_len));
        self.lanes.insert(t, lane);
    }

    /// The thread's shadow stack.
    ///
    /// # Panics
    ///
    /// Panics if the thread was never registered.
    pub fn thread(&mut self, t: ThreadId) -> &mut ShadowStack {
        &mut self.lanes.get_mut(&t).expect("thread registered").shadow
    }

    /// The current principal context of a thread.
    pub fn current(&self, t: ThreadId) -> PrincipalCtx {
        self.lanes.get(&t).and_then(|l| l.shadow.current())
    }

    /// Wrapper entry: records the FunctionEntry guard, saves context on
    /// the shadow stack, switches to `new`.
    pub fn wrapper_enter(&mut self, t: ThreadId, new: PrincipalCtx) -> Word {
        let c = self.costs.function_entry;
        self.stats.record(GuardKind::FunctionEntry, c);
        self.thread(t).push(new)
    }

    /// Wrapper exit: records the FunctionExit guard, validates the return
    /// token, restores the saved context.
    pub fn wrapper_exit(&mut self, t: ThreadId, token: Word) -> Result<(), Violation> {
        let c = self.costs.function_exit;
        self.stats.record(GuardKind::FunctionExit, c);
        self.thread(t).pop(token)
    }

    // ------------------------------------------------------------- guards

    /// Memory-write guard (§4.2): the current principal must hold WRITE
    /// coverage of `[addr, addr+len)`, or the write must fall inside the
    /// current thread's kernel stack.
    ///
    /// This is the implementation behind `Env::guard_write`, executed for
    /// every un-elided module store. The thread's private epoch-validated
    /// cache is consulted before the table walk: module code
    /// overwhelmingly issues runs of stores into the same few objects
    /// (packet payloads, private structs), so a recently established
    /// covering interval usually answers the next check in a few
    /// compares — and because validity is an epoch compare against the
    /// core's atomic counter, a revocation affecting *other* principals
    /// does not evict it.
    pub fn check_write(&mut self, t: ThreadId, addr: Word, len: u64) -> Result<(), Violation> {
        let Some(lane) = self.lanes.get_mut(&t) else {
            // Unregistered thread: kernel context, trusted (and charged).
            self.stats.record(GuardKind::MemWrite, self.costs.mem_write);
            return Ok(());
        };
        check_write_in(
            &self.core,
            lane,
            &mut self.stats,
            &self.costs,
            self.guard_cache_enabled,
            addr,
            len,
        )
    }

    /// Module-level CALL guard: the current principal must hold a CALL
    /// capability for `target`.
    pub fn check_call(&mut self, t: ThreadId, target: Word) -> Result<(), Violation> {
        let ctx = self.current(t);
        let Some((_m, p)) = ctx else {
            return Ok(());
        };
        if self.core.owns(p, RawCap::call(target)) {
            Ok(())
        } else {
            Err(Violation::MissingCall {
                principal: p,
                target,
            })
        }
    }

    /// See [`RuntimeCore::check_indcall`].
    pub fn check_indcall(
        &mut self,
        slot: Word,
        target: Word,
        sig_hash: u64,
    ) -> Result<(), Violation> {
        let mut env = crate::handle::GuardEnv {
            stats: &mut self.stats,
            costs: &self.costs,
            fastpath: self.writer_fastpath,
            scratch: &mut self.scratch,
        };
        self.core.check_indcall(&mut env, slot, target, sig_hash)
    }

    // ---------------------------------------------------------- functions

    /// Registers a function address with its annotation hash.
    pub fn register_function(&mut self, addr: Word, meta: FnMeta) {
        self.core.register_function(addr, meta);
    }

    /// Looks up a registered function (cloned out of the registry).
    pub fn function_at(&self, addr: Word) -> Option<FnMeta> {
        self.core.function_at(addr)
    }

    /// The annotation hash of a registered function (hot path, no clone).
    pub fn function_ahash(&self, addr: Word) -> Option<u64> {
        self.core.function_ahash(addr)
    }

    /// Principals (from any module) holding WRITE coverage of any byte of
    /// the 8-byte slot at `addr`, sorted (diagnostics; the enforcement
    /// path reuses a scratch buffer instead).
    pub fn writers_of(&self, addr: Word) -> Vec<PrincipalId> {
        let mut v = Vec::new();
        self.core.collect_writers(addr, 8, &mut v);
        v.sort_unstable();
        v
    }

    /// The retired global traversal: every principal's WRITE table probed
    /// for overlap with the slot. Kept as the in-tree reference the
    /// reverse index is property-tested and benchmarked against.
    pub fn writers_of_linear(&self, addr: Word) -> Vec<PrincipalId> {
        (0..self.core.principal_count())
            .map(|i| PrincipalId(i as u32))
            .filter(|&p| self.core.write_overlaps(p, addr, 8))
            .collect()
    }

    // --------------------------------------------------- index diagnostics

    /// Panics unless the writer index's structural invariants hold.
    #[doc(hidden)]
    pub fn check_index_invariants(&self) {
        self.core.check_index_invariants();
    }

    /// Number of writer-index shards.
    pub fn index_shard_count(&self) -> usize {
        self.core.index_shard_count()
    }

    /// The configured shard split points.
    pub fn index_boundaries(&self) -> Vec<Word> {
        self.core.index_boundaries()
    }

    /// Live intervals across all shards.
    pub fn index_interval_count(&self) -> usize {
        self.core.index_interval_count()
    }

    /// Live interned writer sets, including the pinned empty set (one
    /// interner is shared by every shard).
    pub fn index_set_count(&self) -> usize {
        self.core.index_set_count()
    }

    /// Writer-set slot allocations ever performed.
    pub fn index_sets_ever_interned(&self) -> u64 {
        self.core.index_sets_ever_interned()
    }

    /// Interner slot capacity (high-water mark of simultaneously live
    /// sets in the shared interner).
    pub fn index_set_slot_capacity(&self) -> usize {
        self.core.index_set_slot_capacity()
    }

    /// Currently recycled (free) slots in the shared interner.
    pub fn index_free_set_slots(&self) -> usize {
        self.core.index_free_set_slots()
    }

    // ------------------------------------------------------ writer tracking

    /// Records that `[addr, addr+len)` was zeroed, clearing writer-set
    /// bits where no live WRITE grant still covers them.
    ///
    /// Hot-path shape: if the range's stripes hold no marked granules at
    /// all the call returns after two atomic loads and touches no lock
    /// (counted in [`GuardStats::note_zeroed_fast_skips`]). Otherwise a
    /// generation token for the range is captured and the actual bitmap
    /// clear is *deferred* into a small per-facade buffer drained at
    /// quiescent points — so a free-heavy burst pays one stripe write
    /// lock per drained range instead of one per free. Ranges spanning
    /// a stripe boundary take the immediate path.
    pub fn note_zeroed(&mut self, addr: Word, len: u64) {
        if !self.core.writer_map.maybe_marked_over(addr, len) {
            self.stats.note_zeroed_fast_skips += 1;
            return;
        }
        match self.core.zero_note_token(addr, len) {
            Some(token) => {
                self.stats.zero_notes_deferred += 1;
                if let Some(slot) = self
                    .zero_notes
                    .iter_mut()
                    .find(|(a, l, _)| *a == addr && *l == len)
                {
                    // Same range re-zeroed: keep only the freshest token.
                    slot.2 = token;
                } else {
                    self.zero_notes.push((addr, len, token));
                    if self.zero_notes.len() >= ZERO_NOTE_BUFFER {
                        self.drain_zero_notes();
                    }
                }
            }
            None => {
                self.core.note_zeroed(addr, len);
            }
        }
    }

    /// Applies every buffered zero-note whose generation token is still
    /// valid; stale tokens (a mark or revoke touched the stripe since
    /// enqueue) are discarded and counted, never applied.
    fn drain_zero_notes(&mut self) {
        for (addr, len, token) in self.zero_notes.drain(..) {
            if self.core.drain_zero_note(addr, len, token).is_none() {
                self.stats.zero_notes_stale += 1;
            }
        }
    }

    /// Drains the deferred zero-note buffer now (quiescent point). The
    /// kernel calls this at natural batch boundaries; tests call it
    /// before asserting on bitmap state.
    pub fn flush_zero_notes(&mut self) {
        self.drain_zero_notes();
    }

    /// See [`RuntimeCore::mark_written`]. Pending zero-notes are drained
    /// first so a deferred clear can never race ahead of this mark.
    pub fn mark_written(&mut self, addr: Word, len: u64) {
        self.drain_zero_notes();
        self.core.mark_written(addr, len);
    }

    /// True if the writer-set fast path would skip checks for `addr`.
    /// Drains pending zero-notes first so the answer reflects every
    /// zeroing the caller has already reported.
    pub fn writer_clean(&mut self, addr: Word) -> bool {
        self.drain_zero_notes();
        self.core.writer_clean(addr)
    }

    /// Writer-set granules currently marked across all stripes (gauge).
    pub fn marked_granules(&self) -> u64 {
        self.core.marked_granules()
    }

    // ---------------------------------------------------------- iterators

    /// See [`RuntimeCore::iterator_id`].
    pub fn iterator_id(&mut self, name: &str) -> IteratorId {
        self.core.iterator_id(name)
    }

    /// The name an iterator id was interned under (diagnostics).
    pub fn iterator_name(&self, id: IteratorId) -> String {
        self.core.iterator_name(id)
    }

    /// See [`RuntimeCore::register_iterator`].
    pub fn register_iterator(&mut self, name: &str, f: IteratorFn) -> IteratorId {
        self.core.register_iterator(name, f)
    }

    /// See [`RuntimeCore::run_iterator_id`].
    pub fn run_iterator_id(
        &self,
        id: IteratorId,
        mem: &AddressSpace,
        arg: Word,
    ) -> Result<Vec<EmittedCap>, Violation> {
        self.core.run_iterator_id(id, mem, arg)
    }

    /// See [`RuntimeCore::run_iterator`].
    pub fn run_iterator(
        &self,
        name: &str,
        mem: &AddressSpace,
        arg: Word,
    ) -> Result<Vec<EmittedCap>, Violation> {
        self.core.run_iterator(name, mem, arg)
    }

    /// Number of registered iterators (annotation census, §8.2).
    pub fn iterator_count(&self) -> usize {
        self.core.iterator_count()
    }

    // ------------------------------------------------------------- consts

    /// See [`RuntimeCore::const_id`].
    pub fn const_id(&mut self, name: &str) -> ConstId {
        self.core.const_id(name)
    }

    /// The value of an interned constant, if defined.
    pub fn const_value(&self, id: ConstId) -> Option<i64> {
        self.core.const_value(id)
    }

    /// The name a constant id was interned under (diagnostics).
    pub fn const_name(&self, id: ConstId) -> String {
        self.core.const_name(id)
    }

    /// Defines a named kernel constant usable in annotation expressions.
    pub fn define_const(&mut self, name: &str, value: i64) {
        self.core.define_const(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_with_module() -> (Runtime, ModuleId) {
        let mut rt = Runtime::new();
        let m = rt.register_module("econet");
        rt.register_thread(ThreadId(0), 0xffff_9000_0000_0000, 0x4000);
        (rt, m)
    }

    #[test]
    fn shared_caps_visible_to_instances() {
        let (mut rt, m) = rt_with_module();
        let shared = rt.shared_principal(m);
        rt.grant(shared, RawCap::call(0xf000));
        let inst = rt.principal_for_name(m, 0x9000);
        assert!(rt.owns(inst, RawCap::call(0xf000)));
        assert!(rt.owns(shared, RawCap::call(0xf000)));
    }

    #[test]
    fn instance_caps_isolated_from_each_other() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let b = rt.principal_for_name(m, 0xa000);
        rt.grant(a, RawCap::write(0x5000, 64));
        assert!(rt.owns(a, RawCap::write(0x5000, 64)));
        assert!(
            !rt.owns(b, RawCap::write(0x5000, 64)),
            "instance B must not see instance A's capabilities (§3.1)"
        );
    }

    #[test]
    fn global_principal_unions_all_instances() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        rt.grant(a, RawCap::write(0x5000, 64));
        let g = rt.global_principal(m);
        assert!(rt.owns(g, RawCap::write(0x5000, 64)));
        assert!(!rt.owns(g, RawCap::write(0x6000, 64)));
    }

    #[test]
    fn global_of_other_module_sees_nothing() {
        let (mut rt, m) = rt_with_module();
        let m2 = rt.register_module("rds");
        let a = rt.principal_for_name(m, 0x9000);
        rt.grant(a, RawCap::write(0x5000, 64));
        let g2 = rt.global_principal(m2);
        assert!(!rt.owns(g2, RawCap::write(0x5000, 64)));
    }

    #[test]
    fn names_are_stable_and_aliasable() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let a2 = rt.principal_for_name(m, 0x9000);
        assert_eq!(a, a2);
        rt.princ_alias(m, 0x9000, 0xb000).unwrap();
        assert_eq!(rt.principal_for_name(m, 0xb000), a);
        // Aliasing an unknown name is denied.
        let err = rt.princ_alias(m, 0xdead, 0xc000).unwrap_err();
        assert!(matches!(err, Violation::PrincipalDenied { .. }));
        // Rebinding an existing name to a different principal is denied.
        let _b = rt.principal_for_name(m, 0xcafe);
        let err = rt.princ_alias(m, 0xcafe, 0x9000).unwrap_err();
        assert!(matches!(err, Violation::PrincipalDenied { .. }));
    }

    #[test]
    fn retirement_moves_write_coverage_to_tombstone() {
        let (mut rt, m) = rt_with_module();
        let slot = 0x5000u64;
        let inst = rt.principal_for_name(m, 0x9000);
        rt.grant(inst, RawCap::write(slot, 8));
        rt.grant(inst, RawCap::call(0xf000));
        assert_eq!(rt.writers_of(slot), vec![inst]);

        let sweep = rt.retire_module(m);
        assert_eq!(sweep.principals_retired, 3, "shared + global + instance");
        assert_eq!(sweep.write_caps_moved, 1);
        assert_eq!(sweep.call_caps_dropped, 1);

        // The slot the dead module wrote keeps a writer on record: the
        // tombstone, which holds no CALL capability, so the indirect
        // call is refused instead of falling through the empty-writer
        // fast exit (the unsound outcome naive revocation would give).
        let ts = rt.core().tombstone().expect("tombstone created");
        assert_eq!(rt.writers_of(slot), vec![ts]);
        let err = rt.check_indcall(slot, 0xf000, 0).unwrap_err();
        assert_eq!(
            err,
            Violation::IndCallUnauthorized {
                slot,
                target: 0xf000,
                writer: ts,
            }
        );
        assert_eq!(err.culprit(), Some(ts));

        // Retired principals hold nothing and read as retired.
        for p in [inst, rt.shared_principal(m), rt.global_principal(m)] {
            assert!(rt.core().is_retired(p));
            assert_eq!(rt.cap_count(p), 0);
        }
        assert!(!rt.core().is_retired(ts), "the tombstone is immortal");
        let (live, retired) = rt.core().principal_gauges();
        assert_eq!(retired, 3);
        assert_eq!(live as usize, rt.core().principal_count() - 3);
        assert_eq!(rt.stats.principals_retired, 3);

        // Retiring again is a no-op (idempotent quarantine).
        let again = rt.retire_module(m);
        assert_eq!(again.principals_retired, 0);
        assert_eq!(again.write_caps_moved, 0);
    }

    #[test]
    fn tombstone_coverage_drains_through_legitimate_channels() {
        let (mut rt, m) = rt_with_module();
        let slot = 0x5000u64;
        let inst = rt.principal_for_name(m, 0x9000);
        rt.grant(inst, RawCap::write(slot, 8));
        rt.retire_module(m);
        let ts = rt.core().tombstone().unwrap();
        assert_eq!(rt.writers_of(slot), vec![ts]);

        // Freeing the memory (kfree sweep) removes the tombstone's
        // coverage like any writer's — the slot is clean again, which is
        // sound because the poisoned value is gone with the memory.
        rt.revoke_write_overlapping_everywhere(slot, 8);
        assert!(rt.writers_of(slot).is_empty());
        assert!(rt.check_indcall(slot, 0xf000, 0).is_ok());
    }

    #[test]
    fn transfer_revokes_from_every_principal() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let b = rt.principal_for_name(m, 0xa000);
        let cap = RawCap::write(0x5000, 64);
        rt.grant(a, cap);
        rt.grant(b, cap);
        rt.revoke_everywhere(cap);
        assert!(!rt.owns(a, cap));
        assert!(!rt.owns(b, cap));
    }

    #[test]
    fn check_write_in_kernel_context_is_free() {
        let (mut rt, _m) = rt_with_module();
        rt.check_write(ThreadId(0), 0x1234, 8).unwrap();
    }

    #[test]
    fn check_write_module_requires_capability() {
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        let t = ThreadId(0);
        rt.thread(t).set_current(Some((m, p)));
        let err = rt.check_write(t, 0x5000, 8).unwrap_err();
        assert!(matches!(err, Violation::MissingWrite { .. }));
        rt.grant(p, RawCap::write(0x5000, 64));
        rt.check_write(t, 0x5000, 8).unwrap();
        rt.check_write(t, 0x5038, 8).unwrap();
        assert!(rt.check_write(t, 0x5040, 8).is_err());
    }

    #[test]
    fn unrelated_revoke_does_not_evict_guard_cache() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let b = rt.principal_for_name(m, 0xa000);
        rt.grant(a, RawCap::write(0x5000, 64));
        rt.grant(b, RawCap::write(0x6000, 64));
        let t = ThreadId(0);
        rt.thread(t).set_current(Some((m, a)));
        rt.check_write(t, 0x5000, 8).unwrap(); // prime a's cache
        rt.stats.reset();
        // Revoking b's (unrelated) capability must not bump a's epoch…
        let epoch_before = rt.write_epoch(a);
        rt.revoke(b, RawCap::write(0x6000, 64));
        assert_eq!(rt.write_epoch(a), epoch_before);
        // …so a's next store still hits the cache.
        rt.check_write(t, 0x5008, 8).unwrap();
        assert_eq!(rt.stats.write_cache_hits, 1);
        assert_eq!(rt.stats.write_cache_misses, 0);
    }

    #[test]
    fn own_revoke_invalidates_guard_cache() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let t = ThreadId(0);
        rt.thread(t).set_current(Some((m, a)));
        rt.grant(a, RawCap::write(0x5000, 64));
        rt.check_write(t, 0x5000, 8).unwrap();
        rt.revoke(a, RawCap::write(0x5000, 64));
        // The cached interval is stale; the epoch bump must force the
        // table probe, which now denies.
        assert!(rt.check_write(t, 0x5000, 8).is_err());
    }

    #[test]
    fn shared_revoke_invalidates_instance_cache() {
        // The instance's cached interval came from the SHARED table via
        // the §3.1 fallback: revoking from shared must invalidate it.
        let (mut rt, m) = rt_with_module();
        let shared = rt.shared_principal(m);
        let a = rt.principal_for_name(m, 0x9000);
        rt.grant(shared, RawCap::write(0x5000, 64));
        let t = ThreadId(0);
        rt.thread(t).set_current(Some((m, a)));
        rt.check_write(t, 0x5000, 8).unwrap(); // cached under a, via shared
        rt.revoke(shared, RawCap::write(0x5000, 64));
        assert!(
            rt.check_write(t, 0x5000, 8).is_err(),
            "stale shared-derived interval must not survive the revoke"
        );
    }

    #[test]
    fn transfer_invalidates_every_holder_cache() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let cap = RawCap::write(0x5000, 64);
        rt.grant(a, cap);
        let t = ThreadId(0);
        rt.thread(t).set_current(Some((m, a)));
        rt.check_write(t, 0x5000, 8).unwrap();
        rt.revoke_everywhere(cap);
        assert!(rt.check_write(t, 0x5000, 8).is_err());
    }

    #[test]
    fn call_revoke_does_not_bump_write_epoch() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        rt.grant(a, RawCap::call(0xf000));
        let before = rt.write_epoch(a);
        rt.revoke(a, RawCap::call(0xf000));
        assert_eq!(
            rt.write_epoch(a),
            before,
            "CALL revokes leave the write cache alone"
        );
    }

    #[test]
    fn failed_revoke_bumps_nothing() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let before = rt.write_epoch(a);
        assert!(!rt.revoke(a, RawCap::write(0x5000, 64)));
        assert_eq!(rt.write_epoch(a), before);
        assert_eq!(rt.stats.epoch_bumps, 0);
    }

    #[test]
    fn disabled_cache_still_decides_identically() {
        let (mut rt, m) = rt_with_module();
        rt.guard_cache_enabled = false;
        let a = rt.principal_for_name(m, 0x9000);
        let t = ThreadId(0);
        rt.thread(t).set_current(Some((m, a)));
        rt.grant(a, RawCap::write(0x5000, 64));
        rt.check_write(t, 0x5000, 8).unwrap();
        rt.check_write(t, 0x5000, 8).unwrap();
        assert_eq!(rt.stats.write_cache_hits, 0, "cache bypassed");
        assert_eq!(rt.stats.write_cache_misses, 0);
        assert!(rt.check_write(t, 0x6000, 8).is_err());
    }

    #[test]
    fn sharded_runtime_answers_match_unsharded() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let b = rt.principal_for_name(m, 0xa000);
        rt.grant(a, RawCap::write(0x5000, 0x100));
        rt.grant(b, RawCap::write(0x5080, 0x100));
        let before_a = rt.writers_of(0x5080);
        // Re-sharding rebuilds the index from live grants; answers and
        // invariants must be unchanged.
        rt.set_shard_boundaries(vec![0x5080, 0x5100]);
        rt.check_index_invariants();
        assert_eq!(rt.index_shard_count(), 3);
        assert_eq!(rt.writers_of(0x5080), before_a);
        assert_eq!(rt.writers_of(0x5080), rt.writers_of_linear(0x5080));
        rt.revoke(b, RawCap::write(0x5080, 0x100));
        assert_eq!(rt.writers_of(0x5080), vec![a]);
    }

    #[test]
    fn kfree_hint_bounds_the_sweep_to_present_principals() {
        // Three principals in three different shards; freeing a region
        // in shard 1 must visit only the principal present there, and
        // the debug assertion cross-checks the full walk.
        let mut rt = Runtime::with_shard_boundaries(vec![0x2000, 0x4000]);
        let m = rt.register_module("kfree");
        let a = rt.principal_for_name(m, 0x9000); // shard 0
        let b = rt.principal_for_name(m, 0xa000); // shard 1
        let c = rt.principal_for_name(m, 0xb000); // shard 2
        rt.grant(a, RawCap::write(0x1000, 0x100));
        rt.grant(b, RawCap::write(0x3000, 0x100));
        rt.grant(c, RawCap::write(0x5000, 0x100));
        rt.stats.reset();
        rt.revoke_write_overlapping_everywhere(0x3000, 0x80);
        assert!(!rt.owns(b, RawCap::write(0x3000, 8)), "b's grant revoked");
        assert!(rt.owns(a, RawCap::write(0x1000, 8)), "a untouched");
        assert!(rt.owns(c, RawCap::write(0x5000, 8)), "c untouched");
        assert_eq!(rt.stats.kfree_hint_visited, 1, "only b visited");
        // a, c, and the module's shared+global principals were skipped.
        assert_eq!(rt.stats.kfree_hint_skipped, 4);
        rt.check_index_invariants();
    }

    #[test]
    fn kernel_stack_writes_always_allowed() {
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        let t = ThreadId(0);
        rt.thread(t).set_current(Some((m, p)));
        rt.check_write(t, 0xffff_9000_0000_0100, 16).unwrap();
        assert!(rt.check_write(t, 0xffff_9000_0000_4000, 8).is_err());
    }

    #[test]
    fn indcall_fast_path_when_slot_clean() {
        let (mut rt, _m) = rt_with_module();
        rt.check_indcall(0x7000, 0xdead_beef, 42).unwrap();
        assert_eq!(rt.stats.count(GuardKind::KernelIndCall), 1);
    }

    #[test]
    fn indcall_rejects_user_space_target() {
        // The RDS exploit: the slot is module-writable and points into
        // user space; the writer has no CALL capability for that address.
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        rt.grant(p, RawCap::write(0x7000, 8));
        let err = rt.check_indcall(0x7000, 0x0000_1000, 42).unwrap_err();
        assert!(matches!(err, Violation::IndCallUnauthorized { .. }));
    }

    #[test]
    fn indcall_rejects_unregistered_target_even_with_call_cap() {
        // Defense in depth: a CALL capability for a non-function address
        // still fails the registry lookup.
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        rt.grant(p, RawCap::write(0x7000, 8));
        rt.grant(p, RawCap::call(0x0000_1000));
        let err = rt.check_indcall(0x7000, 0x0000_1000, 42).unwrap_err();
        assert!(matches!(err, Violation::NotAFunction { .. }));
    }

    #[test]
    fn indcall_rejects_annotation_mismatch() {
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        rt.grant(p, RawCap::write(0x7000, 8));
        rt.grant(p, RawCap::call(0xf000));
        rt.register_function(
            0xf000,
            FnMeta {
                name: "my_xmit".into(),
                ahash: 7,
                module: Some(m),
            },
        );
        let err = rt.check_indcall(0x7000, 0xf000, 8).unwrap_err();
        assert!(matches!(err, Violation::AnnotationMismatch { .. }));
        rt.check_indcall(0x7000, 0xf000, 7).unwrap();
    }

    #[test]
    fn indcall_rejects_writer_without_call_cap() {
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        rt.grant(p, RawCap::write(0x7000, 8));
        rt.register_function(
            0xf000,
            FnMeta {
                name: "detach_pid".into(),
                ahash: 7,
                module: None,
            },
        );
        let err = rt.check_indcall(0x7000, 0xf000, 7).unwrap_err();
        assert!(matches!(err, Violation::IndCallUnauthorized { .. }));
    }

    #[test]
    fn note_zeroed_restores_fast_path() {
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        let cap = RawCap::write(0x7000, 64);
        rt.grant(p, cap);
        assert!(!rt.writer_clean(0x7000));
        // While the capability is held, zeroing must NOT clean the slot.
        rt.note_zeroed(0x7000, 64);
        assert!(!rt.writer_clean(0x7000));
        rt.revoke(p, cap);
        rt.note_zeroed(0x7000, 64);
        assert!(rt.writer_clean(0x7000));
        rt.check_indcall(0x7000, 0x1, 0).unwrap();
    }

    #[test]
    fn wrapper_tokens_validate() {
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        let t = ThreadId(0);
        let tok = rt.wrapper_enter(t, Some((m, p)));
        assert_eq!(rt.current(t), Some((m, p)));
        rt.wrapper_exit(t, tok).unwrap();
        assert_eq!(rt.current(t), None);
        assert_eq!(rt.stats.count(GuardKind::FunctionEntry), 1);
        assert_eq!(rt.stats.count(GuardKind::FunctionExit), 1);
    }

    #[test]
    fn ref_types_intern_stably() {
        let mut rt = Runtime::new();
        let a = rt.ref_type("struct pci_dev");
        let b = rt.ref_type("struct pci_dev");
        let c = rt.ref_type("io_port");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(rt.ref_type_name(a), "struct pci_dev");
    }
}
