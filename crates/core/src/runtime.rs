//! The LXFI runtime façade (§5): principals, capability operations,
//! control-transfer interposition, writer-set-accelerated indirect-call
//! checks, and guard accounting.

use std::collections::HashMap;

use lxfi_machine::{AddressSpace, Word};

use crate::caps::{CapSet, CapType, RawCap, RefTypeId};
use crate::epoch_cache::WriteGuardCache;
use crate::principal::{ModuleId, ModuleInfo, PrincipalId, PrincipalKind};
use crate::shadow::{PrincipalCtx, ShadowStack};
use crate::stats::{GuardCosts, GuardKind, GuardStats};
use crate::writer_index::WriterIndex;
use crate::writer_set::WriterMap;
use crate::Violation;

/// Identifies a kernel thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub u32);

/// Identifies a registered capability iterator. Interned at registration
/// so the enforcement path never hashes iterator names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IteratorId(pub u32);

/// Identifies a named kernel constant usable in annotation expressions.
/// Interned when an annotation referencing the name is compiled or when
/// the constant is defined, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstId(pub u32);

/// A capability emitted by a programmer-supplied capability iterator
/// (§3.3). REF types are pre-interned via [`Runtime::ref_type`], so
/// emitting capabilities involves no string work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmittedCap {
    /// WRITE over a range.
    Write {
        /// Range start.
        addr: Word,
        /// Range length.
        size: u64,
    },
    /// CALL of a target.
    Call {
        /// Call target.
        target: Word,
    },
    /// REF of an interned type.
    Ref {
        /// Interned type.
        rtype: RefTypeId,
        /// Referred value.
        value: Word,
    },
}

/// A capability iterator: walks a data structure in simulated memory and
/// emits the capabilities it contains (e.g. `skb_caps` emits the sk_buff
/// header and its payload buffer).
pub type IteratorFn =
    Box<dyn Fn(&AddressSpace, Word, &mut Vec<EmittedCap>) -> Result<(), String> + Send + Sync>;

#[derive(Debug)]
struct Principal {
    module: ModuleId,
    kind: PrincipalKind,
    caps: CapSet,
    /// Write-guard epoch: incremented whenever this principal's
    /// *observable* WRITE coverage may have shrunk (a revocation from it
    /// or from a principal it falls back to). Cached guard decisions
    /// stamped with an older epoch are invalid.
    write_epoch: u64,
}

/// Metadata for a registered function address.
#[derive(Debug, Clone)]
pub struct FnMeta {
    /// Symbol name.
    pub name: String,
    /// Annotation hash (`ahash`).
    pub ahash: u64,
    /// Owning module (`None` = core kernel).
    pub module: Option<ModuleId>,
}

/// The LXFI runtime state.
pub struct Runtime {
    principals: Vec<Principal>,
    modules: Vec<ModuleInfo>,
    threads: HashMap<ThreadId, ShadowStack>,
    thread_stacks: HashMap<ThreadId, (Word, u64)>,
    writer_map: WriterMap,
    /// Reverse writer index (addr range → interned writer-principal set):
    /// kept in lockstep with every WRITE grant/revocation so the
    /// indirect-call slow path is sublinear in the number of principals.
    writer_index: WriterIndex,
    ref_types: Vec<String>,
    ref_type_ids: HashMap<String, RefTypeId>,
    iterators: Vec<Option<IteratorFn>>,
    iterator_ids: HashMap<String, IteratorId>,
    iterator_names: Vec<String>,
    fn_registry: HashMap<Word, FnMeta>,
    const_values: Vec<Option<i64>>,
    const_ids: HashMap<String, ConstId>,
    const_names: Vec<String>,
    /// Per-principal set-associative cache of covering grant intervals
    /// for the write guard, validated by each principal's `write_epoch`.
    /// Revocation bumps only the affected principals' epochs, so an
    /// unrelated revoke evicts nothing (see [`crate::epoch_cache`]).
    write_cache: WriteGuardCache,
    /// Guard counters (public: benches read and reset them).
    pub stats: GuardStats,
    /// Deterministic guard costs.
    pub costs: GuardCosts,
    /// Ablation switch: when false, every kernel indirect call takes the
    /// full capability-check slow path even when the writer-set bitmap
    /// proves the slot clean. Used to quantify how much the writer-set
    /// optimization (§5) saves; always true in normal operation.
    pub writer_fastpath: bool,
    /// Ablation/test switch: when false, [`Runtime::check_write`] skips
    /// the epoch-validated guard cache entirely and always probes the
    /// interval tables. The epoch-cache property test drives a cached
    /// and an uncached runtime through identical traffic and asserts
    /// identical decisions; benches use it to price the uncached probe.
    pub guard_cache_enabled: bool,
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl Runtime {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        Runtime {
            principals: Vec::new(),
            modules: Vec::new(),
            threads: HashMap::new(),
            thread_stacks: HashMap::new(),
            writer_map: WriterMap::new(),
            writer_index: WriterIndex::new(),
            ref_types: Vec::new(),
            ref_type_ids: HashMap::new(),
            iterators: Vec::new(),
            iterator_ids: HashMap::new(),
            iterator_names: Vec::new(),
            fn_registry: HashMap::new(),
            const_values: Vec::new(),
            const_ids: HashMap::new(),
            const_names: Vec::new(),
            write_cache: WriteGuardCache::new(),
            stats: GuardStats::new(),
            costs: GuardCosts::default(),
            writer_fastpath: true,
            guard_cache_enabled: true,
        }
    }

    /// Reconfigures the reverse writer index's shard boundaries (address
    /// split points — typically the kernel layout's region bases and
    /// module windows) and rebuilds the index from every principal's
    /// live WRITE grants. Callable at any time; the simulated kernel
    /// does it once at boot, before any module loads.
    pub fn set_shard_boundaries(&mut self, boundaries: Vec<Word>) {
        let mut index = WriterIndex::with_boundaries(boundaries);
        // The allocation gauge is documented monotonic; fold the retired
        // index's count in so a rebuild never steps it backwards.
        index.carry_allocation_count(self.writer_index.sets_ever_interned());
        for (i, pr) in self.principals.iter().enumerate() {
            for (a, s) in pr.caps.write.iter() {
                index.add(PrincipalId(i as u32), a, s);
            }
        }
        self.writer_index = index;
        self.update_writer_set_gauges();
    }

    // ------------------------------------------------------------ modules

    /// Registers a module, creating its shared and global principals.
    pub fn register_module(&mut self, name: &str) -> ModuleId {
        let mid = ModuleId(self.modules.len() as u32);
        let shared = self.new_principal(mid, PrincipalKind::Shared);
        let global = self.new_principal(mid, PrincipalKind::Global);
        self.modules
            .push(ModuleInfo::new(name.to_string(), shared, global));
        mid
    }

    fn new_principal(&mut self, module: ModuleId, kind: PrincipalKind) -> PrincipalId {
        let id = PrincipalId(self.principals.len() as u32);
        self.principals.push(Principal {
            module,
            kind,
            caps: CapSet::new(),
            write_epoch: 0,
        });
        id
    }

    /// Module bookkeeping (name map, principals).
    pub fn module(&self, id: ModuleId) -> &ModuleInfo {
        &self.modules[id.0 as usize]
    }

    /// Number of registered modules.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// The module's shared principal.
    pub fn shared_principal(&self, id: ModuleId) -> PrincipalId {
        self.modules[id.0 as usize].shared
    }

    /// The module's global principal.
    pub fn global_principal(&self, id: ModuleId) -> PrincipalId {
        self.modules[id.0 as usize].global
    }

    /// The kind of a principal.
    pub fn principal_kind(&self, p: PrincipalId) -> PrincipalKind {
        self.principals[p.0 as usize].kind
    }

    /// The module a principal belongs to.
    pub fn principal_module(&self, p: PrincipalId) -> ModuleId {
        self.principals[p.0 as usize].module
    }

    // --------------------------------------------------- principal naming

    /// Resolves the principal named by pointer `name`, creating a fresh
    /// instance principal on first use (a module invocation with a
    /// `principal(ptr)` annotation is the instance's birth).
    pub fn principal_for_name(&mut self, module: ModuleId, name: Word) -> PrincipalId {
        if let Some(p) = self.modules[module.0 as usize].lookup_name(name) {
            return p;
        }
        let p = self.new_principal(module, PrincipalKind::Instance);
        let m = &mut self.modules[module.0 as usize];
        m.instances.push(p);
        m.names.insert(name, p);
        p
    }

    /// `lxfi_princ_alias(existing, new)` (§3.3): binds `new_name` to the
    /// principal already named `existing_name`. The module code must have
    /// performed an adequate check before calling this (§3.4); the runtime
    /// additionally refuses to alias names the module has never seen.
    pub fn princ_alias(
        &mut self,
        module: ModuleId,
        existing_name: Word,
        new_name: Word,
    ) -> Result<(), Violation> {
        let m = &self.modules[module.0 as usize];
        let p = m
            .lookup_name(existing_name)
            .ok_or_else(|| Violation::PrincipalDenied {
                why: format!("no principal named {existing_name:#x} in module {}", m.name),
            })?;
        let m = &mut self.modules[module.0 as usize];
        if let Some(prev) = m.names.get(&new_name) {
            if *prev != p {
                return Err(Violation::PrincipalDenied {
                    why: format!("name {new_name:#x} already bound to a different principal"),
                });
            }
            return Ok(());
        }
        m.names.insert(new_name, p);
        Ok(())
    }

    // ------------------------------------------------------- capabilities

    /// Interns a REF type name.
    pub fn ref_type(&mut self, name: &str) -> RefTypeId {
        if let Some(&id) = self.ref_type_ids.get(name) {
            return id;
        }
        let id = RefTypeId(self.ref_types.len() as u32);
        self.ref_types.push(name.to_string());
        self.ref_type_ids.insert(name.to_string(), id);
        id
    }

    /// The name of an interned REF type.
    pub fn ref_type_name(&self, id: RefTypeId) -> &str {
        &self.ref_types[id.0 as usize]
    }

    /// Grants a capability to a principal. WRITE grants mark the
    /// writer-set map and enter the reverse writer index (§5). Grants
    /// never bump write epochs: added authority cannot invalidate a
    /// cached positive guard decision.
    pub fn grant(&mut self, p: PrincipalId, cap: RawCap) {
        if cap.ctype == CapType::Write {
            self.writer_map.mark(cap.addr, cap.size);
            self.writer_index.add(p, cap.addr, cap.size);
            self.update_writer_set_gauges();
        }
        self.principals[p.0 as usize].caps.grant(cap);
    }

    /// Revokes a capability from one principal. A successful WRITE
    /// revocation bumps the write epochs of exactly the principals whose
    /// observable coverage shrank; every other principal's guard cache
    /// survives untouched.
    pub fn revoke(&mut self, p: PrincipalId, cap: RawCap) -> bool {
        let removed = self.principals[p.0 as usize].caps.revoke(cap);
        if removed && cap.ctype == CapType::Write {
            self.bump_write_epochs(p);
            self.unindex_write(p, cap.addr, cap.size);
            self.update_writer_set_gauges();
        }
        removed
    }

    /// The current write-guard epoch of a principal (diagnostics/tests).
    pub fn write_epoch(&self, p: PrincipalId) -> u64 {
        self.principals[p.0 as usize].write_epoch
    }

    /// Bumps the write epoch of `p` and of every principal whose
    /// [`Runtime::check_write`] coverage can *observe* `p`'s WRITE table
    /// through the §3.1 hierarchy fallbacks:
    ///
    /// - revoking from an **instance** also invalidates the module's
    ///   global principal (it unions every instance);
    /// - revoking from the **shared** principal invalidates every
    ///   instance (they fall back to shared) and the global principal;
    /// - revoking from the **global** principal invalidates only itself
    ///   (nobody falls back to global).
    fn bump_write_epochs(&mut self, p: PrincipalId) {
        self.bump_one_epoch(p);
        let pr = &self.principals[p.0 as usize];
        let module = pr.module;
        match pr.kind {
            PrincipalKind::Global => {}
            PrincipalKind::Instance => {
                let g = self.modules[module.0 as usize].global;
                self.bump_one_epoch(g);
            }
            PrincipalKind::Shared => {
                let m = &self.modules[module.0 as usize];
                let global = m.global;
                let instances = m.instances.len();
                self.bump_one_epoch(global);
                // Index instead of iterating: the bump needs `&mut
                // self.principals` while the instance list lives in
                // `self.modules`, and this path must not allocate.
                for k in 0..instances {
                    let q = self.modules[module.0 as usize].instances[k];
                    self.bump_one_epoch(q);
                }
            }
        }
    }

    fn bump_one_epoch(&mut self, p: PrincipalId) {
        self.principals[p.0 as usize].write_epoch += 1;
        self.stats.epoch_bumps += 1;
    }

    /// Refreshes the writer-set GC gauges in [`GuardStats`] from the
    /// reverse index's interner (two loads; called after every index
    /// mutation).
    fn update_writer_set_gauges(&mut self) {
        self.stats.writer_sets_live = self.writer_index.set_count() as u64;
        self.stats.writer_sets_ever = self.writer_index.sets_ever_interned();
    }

    /// Drops `p` from the writer index over `[addr, addr+size)`, then
    /// reinstates whatever coverage `p`'s *remaining* grants still have
    /// there (the index stores merged coverage, so revoking one of two
    /// overlapping grants must not erase the survivor).
    fn unindex_write(&mut self, p: PrincipalId, addr: Word, size: u64) {
        let Runtime {
            principals,
            writer_index,
            ..
        } = self;
        writer_index.remove(p, addr, size);
        let end = addr.saturating_add(size);
        for (a, s) in principals[p.0 as usize]
            .caps
            .write
            .iter_overlapping(addr, size)
        {
            // Clip to the removed window: coverage outside it never left.
            let lo = a.max(addr);
            let hi = (a.saturating_add(s)).min(end);
            if lo < hi {
                writer_index.add(p, lo, hi - lo);
            }
        }
    }

    /// Revokes a capability from **every** principal in the system —
    /// `transfer` semantics (§3.3): no stale copies survive. Bumps write
    /// epochs only for the principals a removal actually touched.
    pub fn revoke_everywhere(&mut self, cap: RawCap) {
        let mut touched = false;
        for i in 0..self.principals.len() {
            let removed = self.principals[i].caps.revoke(cap);
            if removed && cap.ctype == CapType::Write {
                let p = PrincipalId(i as u32);
                self.bump_write_epochs(p);
                self.unindex_write(p, cap.addr, cap.size);
                touched = true;
            }
        }
        if touched {
            self.update_writer_set_gauges();
        }
    }

    /// Revokes all WRITE capabilities overlapping `[addr, addr+size)` from
    /// every principal (used by `kfree`: freed memory must have no
    /// outstanding capabilities). Bumps write epochs only for principals
    /// that actually lost coverage.
    pub fn revoke_write_overlapping_everywhere(&mut self, addr: Word, size: u64) {
        let mut touched = false;
        for i in 0..self.principals.len() {
            let (_, span) = self.principals[i]
                .caps
                .write
                .revoke_overlapping_span(addr, size);
            // A partially intersected grant is revoked whole, so the lost
            // coverage can reach beyond [addr, addr+size): un-index the
            // actual extent of what was removed.
            if let Some((lo, hi)) = span {
                let p = PrincipalId(i as u32);
                self.bump_write_epochs(p);
                self.unindex_write(p, lo, hi - lo);
                touched = true;
            }
        }
        if touched {
            self.update_writer_set_gauges();
        }
    }

    /// Ownership test with the principal-hierarchy semantics of §3.1:
    /// an instance principal falls back to the module's shared principal;
    /// the global principal owns anything any principal of its module
    /// owns.
    pub fn owns(&self, p: PrincipalId, cap: RawCap) -> bool {
        let pr = &self.principals[p.0 as usize];
        match pr.kind {
            PrincipalKind::Shared => pr.caps.owns(cap),
            PrincipalKind::Instance => {
                pr.caps.owns(cap) || {
                    let shared = self.modules[pr.module.0 as usize].shared;
                    self.principals[shared.0 as usize].caps.owns(cap)
                }
            }
            PrincipalKind::Global => {
                let m = &self.modules[pr.module.0 as usize];
                m.all_principals()
                    .any(|q| self.principals[q.0 as usize].caps.owns(cap))
            }
        }
    }

    /// Ownership test for an optional principal context (`None` = the
    /// trusted core kernel, which owns everything).
    pub fn ctx_owns(&self, ctx: PrincipalCtx, cap: RawCap) -> bool {
        match ctx {
            None => true,
            Some((_, p)) => self.owns(p, cap),
        }
    }

    /// Number of capabilities a principal holds directly (diagnostics).
    pub fn cap_count(&self, p: PrincipalId) -> usize {
        self.principals[p.0 as usize].caps.len()
    }

    // ------------------------------------------------------------ threads

    /// Registers a kernel thread and its stack range (the module receives
    /// implicit WRITE access to the current kernel stack, §3.2).
    pub fn register_thread(&mut self, t: ThreadId, stack_base: Word, stack_len: u64) {
        self.threads.insert(t, ShadowStack::new());
        self.thread_stacks.insert(t, (stack_base, stack_len));
    }

    /// The thread's shadow stack.
    ///
    /// # Panics
    ///
    /// Panics if the thread was never registered.
    pub fn thread(&mut self, t: ThreadId) -> &mut ShadowStack {
        self.threads.get_mut(&t).expect("thread registered")
    }

    /// The current principal context of a thread.
    pub fn current(&self, t: ThreadId) -> PrincipalCtx {
        self.threads.get(&t).and_then(|s| s.current())
    }

    /// Wrapper entry: records the FunctionEntry guard, saves context on
    /// the shadow stack, switches to `new`.
    pub fn wrapper_enter(&mut self, t: ThreadId, new: PrincipalCtx) -> Word {
        let c = self.costs.function_entry;
        self.stats.record(GuardKind::FunctionEntry, c);
        self.thread(t).push(new)
    }

    /// Wrapper exit: records the FunctionExit guard, validates the return
    /// token, restores the saved context.
    pub fn wrapper_exit(&mut self, t: ThreadId, token: Word) -> Result<(), Violation> {
        let c = self.costs.function_exit;
        self.stats.record(GuardKind::FunctionExit, c);
        self.thread(t).pop(token)
    }

    // ------------------------------------------------------------- guards

    /// Memory-write guard (§4.2): the current principal must hold WRITE
    /// coverage of `[addr, addr+len)`, or the write must fall inside the
    /// current thread's kernel stack.
    ///
    /// This is the implementation behind `Env::guard_write`, executed for
    /// every un-elided module store. The per-principal epoch-validated
    /// cache is consulted before the table walk: module code
    /// overwhelmingly issues runs of stores into the same few objects
    /// (packet payloads, private structs), so a recently established
    /// covering interval usually answers the next check in a few
    /// compares — and because validity is an epoch compare, a revocation
    /// affecting *other* principals does not evict it.
    pub fn check_write(&mut self, t: ThreadId, addr: Word, len: u64) -> Result<(), Violation> {
        let c = self.costs.mem_write;
        self.stats.record(GuardKind::MemWrite, c);
        let ctx = self.current(t);
        let Some((_m, p)) = ctx else {
            return Ok(()); // Kernel context: trusted.
        };
        if len == 0 {
            return Ok(()); // Zero-length writes are vacuously permitted.
        }
        let end = addr.checked_add(len);
        if let Some(&(base, slen)) = self.thread_stacks.get(&t) {
            if addr >= base && end.is_some_and(|e| e <= base + slen) {
                return Ok(());
            }
        }
        if self.guard_cache_enabled {
            // An overflowing end never consults the cache (the probe
            // below denies it), so it counts as neither hit nor miss.
            if let Some(e) = end {
                let epoch = self.principals[p.0 as usize].write_epoch;
                if self.write_cache.lookup(p, epoch, addr, e) {
                    self.stats.write_cache_hits += 1;
                    return Ok(());
                }
                self.stats.write_cache_misses += 1;
            }
        }
        if let Some(interval) = self.write_covering(p, addr, len) {
            if self.guard_cache_enabled {
                let epoch = self.principals[p.0 as usize].write_epoch;
                self.write_cache.insert(p, epoch, interval);
            }
            Ok(())
        } else {
            Err(Violation::MissingWrite {
                principal: p,
                addr,
                len,
            })
        }
    }

    /// The covering interval behind a successful WRITE ownership test,
    /// with the principal-hierarchy fallbacks of [`Runtime::owns`].
    fn write_covering(&self, p: PrincipalId, addr: Word, len: u64) -> Option<(Word, Word)> {
        let pr = &self.principals[p.0 as usize];
        match pr.kind {
            PrincipalKind::Shared => pr.caps.write.covering(addr, len),
            PrincipalKind::Instance => pr.caps.write.covering(addr, len).or_else(|| {
                let shared = self.modules[pr.module.0 as usize].shared;
                self.principals[shared.0 as usize]
                    .caps
                    .write
                    .covering(addr, len)
            }),
            PrincipalKind::Global => {
                let m = &self.modules[pr.module.0 as usize];
                m.all_principals()
                    .find_map(|q| self.principals[q.0 as usize].caps.write.covering(addr, len))
            }
        }
    }

    /// Module-level CALL guard: the current principal must hold a CALL
    /// capability for `target`.
    pub fn check_call(&mut self, t: ThreadId, target: Word) -> Result<(), Violation> {
        let ctx = self.current(t);
        let Some((_m, p)) = ctx else {
            return Ok(());
        };
        if self.owns(p, RawCap::call(target)) {
            Ok(())
        } else {
            Err(Violation::MissingCall {
                principal: p,
                target,
            })
        }
    }

    // ---------------------------------------------------------- functions

    /// Registers a function address with its annotation hash.
    pub fn register_function(&mut self, addr: Word, meta: FnMeta) {
        self.fn_registry.insert(addr, meta);
    }

    /// Looks up a registered function.
    pub fn function_at(&self, addr: Word) -> Option<&FnMeta> {
        self.fn_registry.get(&addr)
    }

    /// Principals (from any module) holding WRITE coverage of any byte of
    /// the 8-byte slot at `addr` — the indirect-call slow path, answered
    /// by the reverse writer index in O(log intervals + writers) instead
    /// of the paper's global principal-list traversal (§5).
    ///
    /// Allocates the result for diagnostic callers; the enforcement path
    /// ([`Runtime::check_indcall`]) iterates the interned sets directly.
    pub fn writers_of(&self, addr: Word) -> Vec<PrincipalId> {
        let mut v: Vec<PrincipalId> = self.writer_index.writers_over(addr, 8).collect();
        v.sort_unstable();
        v
    }

    /// The retired global traversal: every principal's WRITE table probed
    /// for overlap with the slot. Kept as the in-tree reference the
    /// reverse index is property-tested and benchmarked against.
    pub fn writers_of_linear(&self, addr: Word) -> Vec<PrincipalId> {
        self.principals
            .iter()
            .enumerate()
            .filter(|(_, p)| p.caps.write.overlaps(addr, 8))
            .map(|(i, _)| PrincipalId(i as u32))
            .collect()
    }

    /// Read access to the reverse writer index (diagnostics, tests).
    pub fn writer_index(&self) -> &WriterIndex {
        &self.writer_index
    }

    /// `lxfi_check_indcall(pptr, ahash)` (§4.1): validates a kernel
    /// indirect call through the function-pointer slot at `slot` whose
    /// declared pointer type hashes to `sig_hash`. `target` is the value
    /// currently stored in the slot.
    ///
    /// Fast path: if the writer-set bitmap proves no module was ever
    /// granted WRITE over the slot, the call is kernel-authored and needs
    /// no capability check.
    pub fn check_indcall(
        &mut self,
        slot: Word,
        target: Word,
        sig_hash: u64,
    ) -> Result<(), Violation> {
        if self.writer_fastpath && !self.writer_map.maybe_written(slot) {
            let c = self.costs.ind_call_fast;
            self.stats.record(GuardKind::KernelIndCall, c);
            return Ok(());
        }
        // Past the bitmap: the reverse-index lookup runs, so the
        // slow-path cost applies even when it finds no writers (a benign
        // bitmap false positive, §5).
        let c = self.costs.ind_call_slow;
        self.stats.record(GuardKind::KernelIndCall, c);
        // First check (§4.1): every writer principal must hold a CALL
        // capability for the target. This is what rejects user-space
        // targets and un-imported kernel functions like `detach_pid`.
        // The writer set comes straight out of the index's interned sets
        // — no per-call allocation.
        let mut any_writer = false;
        for w in self.writer_index.writers_over(slot, 8) {
            any_writer = true;
            let module = self.principals[w.0 as usize].module;
            self.stats.record_indcall_module(module, c);
            if !self.owns(w, RawCap::call(target)) {
                return Err(Violation::IndCallUnauthorized {
                    slot,
                    target,
                    writer: w,
                });
            }
        }
        if !any_writer {
            return Ok(());
        }
        // Second check (§4.1): the annotations of the stored function and
        // of the function-pointer type must match, so a module cannot
        // launder a function through a differently-annotated slot.
        let fn_hash = self
            .fn_registry
            .get(&target)
            .map(|m| m.ahash)
            .ok_or(Violation::NotAFunction { target })?;
        if fn_hash != sig_hash {
            return Err(Violation::AnnotationMismatch { sig_hash, fn_hash });
        }
        Ok(())
    }

    // ------------------------------------------------------ writer tracking

    /// Notes that `[addr, addr+len)` was zeroed (allocator or kernel
    /// `memset`): writer-set bits clear unless a principal still holds
    /// WRITE coverage.
    pub fn note_zeroed(&mut self, addr: Word, len: u64) {
        // A granule stays marked while any principal holds WRITE coverage
        // of any byte in it (clearing would be a false negative). The
        // reverse index answers this in one window search instead of a
        // per-granule walk of every principal.
        let index = &self.writer_index;
        self.writer_map
            .clear_zeroed(addr, len, |granule| index.overlaps(granule, 64));
    }

    /// Direct writer-map marking (used when a module is loaded: its
    /// writable sections may contain function pointers the kernel will
    /// invoke, §5).
    pub fn mark_written(&mut self, addr: Word, len: u64) {
        self.writer_map.mark(addr, len);
    }

    /// True if the writer-set fast path would skip checks for `addr`.
    pub fn writer_clean(&self, addr: Word) -> bool {
        !self.writer_map.maybe_written(addr)
    }

    // ---------------------------------------------------------- iterators

    /// Interns an iterator name, reserving an empty slot if the iterator
    /// has not been registered yet (annotations may be compiled before
    /// the module supplying the iterator loads).
    pub fn iterator_id(&mut self, name: &str) -> IteratorId {
        if let Some(&id) = self.iterator_ids.get(name) {
            return id;
        }
        let id = IteratorId(self.iterators.len() as u32);
        self.iterators.push(None);
        self.iterator_names.push(name.to_string());
        self.iterator_ids.insert(name.to_string(), id);
        id
    }

    /// The name an iterator id was interned under (diagnostics).
    pub fn iterator_name(&self, id: IteratorId) -> &str {
        &self.iterator_names[id.0 as usize]
    }

    /// Registers a capability iterator under `name`; returns the interned
    /// id compiled annotations reference it by.
    pub fn register_iterator(&mut self, name: &str, f: IteratorFn) -> IteratorId {
        let id = self.iterator_id(name);
        self.iterators[id.0 as usize] = Some(f);
        id
    }

    /// Runs a registered iterator by interned id (the enforcement path —
    /// no name lookup).
    pub fn run_iterator_id(
        &self,
        id: IteratorId,
        mem: &AddressSpace,
        arg: Word,
    ) -> Result<Vec<EmittedCap>, Violation> {
        let f =
            self.iterators[id.0 as usize]
                .as_ref()
                .ok_or_else(|| Violation::UnknownIterator {
                    name: self.iterator_name(id).to_string(),
                })?;
        let mut out = Vec::new();
        f(mem, arg, &mut out).map_err(|why| Violation::IteratorFailed {
            name: self.iterator_name(id).to_string(),
            why,
        })?;
        Ok(out)
    }

    /// Runs a registered iterator by name (registration-time / test API;
    /// enforcement goes through [`Runtime::run_iterator_id`]).
    pub fn run_iterator(
        &self,
        name: &str,
        mem: &AddressSpace,
        arg: Word,
    ) -> Result<Vec<EmittedCap>, Violation> {
        let id =
            self.iterator_ids
                .get(name)
                .copied()
                .ok_or_else(|| Violation::UnknownIterator {
                    name: name.to_string(),
                })?;
        self.run_iterator_id(id, mem, arg)
    }

    /// Number of registered iterators (annotation census, §8.2).
    /// Interned-but-unregistered slots do not count.
    pub fn iterator_count(&self) -> usize {
        self.iterators.iter().filter(|f| f.is_some()).count()
    }

    // ------------------------------------------------------------- consts

    /// Interns a constant name, reserving an undefined slot if the
    /// constant has not been defined yet (evaluating an undefined slot
    /// reports an unknown identifier, matching by-name lookup).
    pub fn const_id(&mut self, name: &str) -> ConstId {
        if let Some(&id) = self.const_ids.get(name) {
            return id;
        }
        let id = ConstId(self.const_values.len() as u32);
        self.const_values.push(None);
        self.const_names.push(name.to_string());
        self.const_ids.insert(name.to_string(), id);
        id
    }

    /// The value of an interned constant, if defined.
    pub fn const_value(&self, id: ConstId) -> Option<i64> {
        self.const_values[id.0 as usize]
    }

    /// The name a constant id was interned under (diagnostics).
    pub fn const_name(&self, id: ConstId) -> &str {
        &self.const_names[id.0 as usize]
    }

    /// Defines a named kernel constant usable in annotation expressions.
    pub fn define_const(&mut self, name: &str, value: i64) {
        let id = self.const_id(name);
        self.const_values[id.0 as usize] = Some(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_with_module() -> (Runtime, ModuleId) {
        let mut rt = Runtime::new();
        let m = rt.register_module("econet");
        rt.register_thread(ThreadId(0), 0xffff_9000_0000_0000, 0x4000);
        (rt, m)
    }

    #[test]
    fn shared_caps_visible_to_instances() {
        let (mut rt, m) = rt_with_module();
        let shared = rt.shared_principal(m);
        rt.grant(shared, RawCap::call(0xf000));
        let inst = rt.principal_for_name(m, 0x9000);
        assert!(rt.owns(inst, RawCap::call(0xf000)));
        assert!(rt.owns(shared, RawCap::call(0xf000)));
    }

    #[test]
    fn instance_caps_isolated_from_each_other() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let b = rt.principal_for_name(m, 0xa000);
        rt.grant(a, RawCap::write(0x5000, 64));
        assert!(rt.owns(a, RawCap::write(0x5000, 64)));
        assert!(
            !rt.owns(b, RawCap::write(0x5000, 64)),
            "instance B must not see instance A's capabilities (§3.1)"
        );
    }

    #[test]
    fn global_principal_unions_all_instances() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        rt.grant(a, RawCap::write(0x5000, 64));
        let g = rt.global_principal(m);
        assert!(rt.owns(g, RawCap::write(0x5000, 64)));
        assert!(!rt.owns(g, RawCap::write(0x6000, 64)));
    }

    #[test]
    fn global_of_other_module_sees_nothing() {
        let (mut rt, m) = rt_with_module();
        let m2 = rt.register_module("rds");
        let a = rt.principal_for_name(m, 0x9000);
        rt.grant(a, RawCap::write(0x5000, 64));
        let g2 = rt.global_principal(m2);
        assert!(!rt.owns(g2, RawCap::write(0x5000, 64)));
    }

    #[test]
    fn names_are_stable_and_aliasable() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let a2 = rt.principal_for_name(m, 0x9000);
        assert_eq!(a, a2);
        rt.princ_alias(m, 0x9000, 0xb000).unwrap();
        assert_eq!(rt.principal_for_name(m, 0xb000), a);
        // Aliasing an unknown name is denied.
        let err = rt.princ_alias(m, 0xdead, 0xc000).unwrap_err();
        assert!(matches!(err, Violation::PrincipalDenied { .. }));
        // Rebinding an existing name to a different principal is denied.
        let _b = rt.principal_for_name(m, 0xcafe);
        let err = rt.princ_alias(m, 0xcafe, 0x9000).unwrap_err();
        assert!(matches!(err, Violation::PrincipalDenied { .. }));
    }

    #[test]
    fn transfer_revokes_from_every_principal() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let b = rt.principal_for_name(m, 0xa000);
        let cap = RawCap::write(0x5000, 64);
        rt.grant(a, cap);
        rt.grant(b, cap);
        rt.revoke_everywhere(cap);
        assert!(!rt.owns(a, cap));
        assert!(!rt.owns(b, cap));
    }

    #[test]
    fn check_write_in_kernel_context_is_free() {
        let (mut rt, _m) = rt_with_module();
        rt.check_write(ThreadId(0), 0x1234, 8).unwrap();
    }

    #[test]
    fn check_write_module_requires_capability() {
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        let t = ThreadId(0);
        rt.thread(t).set_current(Some((m, p)));
        let err = rt.check_write(t, 0x5000, 8).unwrap_err();
        assert!(matches!(err, Violation::MissingWrite { .. }));
        rt.grant(p, RawCap::write(0x5000, 64));
        rt.check_write(t, 0x5000, 8).unwrap();
        rt.check_write(t, 0x5038, 8).unwrap();
        assert!(rt.check_write(t, 0x5040, 8).is_err());
    }

    #[test]
    fn unrelated_revoke_does_not_evict_guard_cache() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let b = rt.principal_for_name(m, 0xa000);
        rt.grant(a, RawCap::write(0x5000, 64));
        rt.grant(b, RawCap::write(0x6000, 64));
        let t = ThreadId(0);
        rt.thread(t).set_current(Some((m, a)));
        rt.check_write(t, 0x5000, 8).unwrap(); // prime a's cache
        rt.stats.reset();
        // Revoking b's (unrelated) capability must not bump a's epoch…
        let epoch_before = rt.write_epoch(a);
        rt.revoke(b, RawCap::write(0x6000, 64));
        assert_eq!(rt.write_epoch(a), epoch_before);
        // …so a's next store still hits the cache.
        rt.check_write(t, 0x5008, 8).unwrap();
        assert_eq!(rt.stats.write_cache_hits, 1);
        assert_eq!(rt.stats.write_cache_misses, 0);
    }

    #[test]
    fn own_revoke_invalidates_guard_cache() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let t = ThreadId(0);
        rt.thread(t).set_current(Some((m, a)));
        rt.grant(a, RawCap::write(0x5000, 64));
        rt.check_write(t, 0x5000, 8).unwrap();
        rt.revoke(a, RawCap::write(0x5000, 64));
        // The cached interval is stale; the epoch bump must force the
        // table probe, which now denies.
        assert!(rt.check_write(t, 0x5000, 8).is_err());
    }

    #[test]
    fn shared_revoke_invalidates_instance_cache() {
        // The instance's cached interval came from the SHARED table via
        // the §3.1 fallback: revoking from shared must invalidate it.
        let (mut rt, m) = rt_with_module();
        let shared = rt.shared_principal(m);
        let a = rt.principal_for_name(m, 0x9000);
        rt.grant(shared, RawCap::write(0x5000, 64));
        let t = ThreadId(0);
        rt.thread(t).set_current(Some((m, a)));
        rt.check_write(t, 0x5000, 8).unwrap(); // cached under a, via shared
        rt.revoke(shared, RawCap::write(0x5000, 64));
        assert!(
            rt.check_write(t, 0x5000, 8).is_err(),
            "stale shared-derived interval must not survive the revoke"
        );
    }

    #[test]
    fn transfer_invalidates_every_holder_cache() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let cap = RawCap::write(0x5000, 64);
        rt.grant(a, cap);
        let t = ThreadId(0);
        rt.thread(t).set_current(Some((m, a)));
        rt.check_write(t, 0x5000, 8).unwrap();
        rt.revoke_everywhere(cap);
        assert!(rt.check_write(t, 0x5000, 8).is_err());
    }

    #[test]
    fn call_revoke_does_not_bump_write_epoch() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        rt.grant(a, RawCap::call(0xf000));
        let before = rt.write_epoch(a);
        rt.revoke(a, RawCap::call(0xf000));
        assert_eq!(
            rt.write_epoch(a),
            before,
            "CALL revokes leave the write cache alone"
        );
    }

    #[test]
    fn failed_revoke_bumps_nothing() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let before = rt.write_epoch(a);
        assert!(!rt.revoke(a, RawCap::write(0x5000, 64)));
        assert_eq!(rt.write_epoch(a), before);
        assert_eq!(rt.stats.epoch_bumps, 0);
    }

    #[test]
    fn disabled_cache_still_decides_identically() {
        let (mut rt, m) = rt_with_module();
        rt.guard_cache_enabled = false;
        let a = rt.principal_for_name(m, 0x9000);
        let t = ThreadId(0);
        rt.thread(t).set_current(Some((m, a)));
        rt.grant(a, RawCap::write(0x5000, 64));
        rt.check_write(t, 0x5000, 8).unwrap();
        rt.check_write(t, 0x5000, 8).unwrap();
        assert_eq!(rt.stats.write_cache_hits, 0, "cache bypassed");
        assert_eq!(rt.stats.write_cache_misses, 0);
        assert!(rt.check_write(t, 0x6000, 8).is_err());
    }

    #[test]
    fn sharded_runtime_answers_match_unsharded() {
        let (mut rt, m) = rt_with_module();
        let a = rt.principal_for_name(m, 0x9000);
        let b = rt.principal_for_name(m, 0xa000);
        rt.grant(a, RawCap::write(0x5000, 0x100));
        rt.grant(b, RawCap::write(0x5080, 0x100));
        let before_a = rt.writers_of(0x5080);
        // Re-sharding rebuilds the index from live grants; answers and
        // invariants must be unchanged.
        rt.set_shard_boundaries(vec![0x5080, 0x5100]);
        rt.writer_index().check_invariants();
        assert_eq!(rt.writer_index().shard_count(), 3);
        assert_eq!(rt.writers_of(0x5080), before_a);
        assert_eq!(rt.writers_of(0x5080), rt.writers_of_linear(0x5080));
        rt.revoke(b, RawCap::write(0x5080, 0x100));
        assert_eq!(rt.writers_of(0x5080), vec![a]);
    }

    #[test]
    fn kernel_stack_writes_always_allowed() {
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        let t = ThreadId(0);
        rt.thread(t).set_current(Some((m, p)));
        rt.check_write(t, 0xffff_9000_0000_0100, 16).unwrap();
        assert!(rt.check_write(t, 0xffff_9000_0000_4000, 8).is_err());
    }

    #[test]
    fn indcall_fast_path_when_slot_clean() {
        let (mut rt, _m) = rt_with_module();
        rt.check_indcall(0x7000, 0xdead_beef, 42).unwrap();
        assert_eq!(rt.stats.count(GuardKind::KernelIndCall), 1);
    }

    #[test]
    fn indcall_rejects_user_space_target() {
        // The RDS exploit: the slot is module-writable and points into
        // user space; the writer has no CALL capability for that address.
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        rt.grant(p, RawCap::write(0x7000, 8));
        let err = rt.check_indcall(0x7000, 0x0000_1000, 42).unwrap_err();
        assert!(matches!(err, Violation::IndCallUnauthorized { .. }));
    }

    #[test]
    fn indcall_rejects_unregistered_target_even_with_call_cap() {
        // Defense in depth: a CALL capability for a non-function address
        // still fails the registry lookup.
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        rt.grant(p, RawCap::write(0x7000, 8));
        rt.grant(p, RawCap::call(0x0000_1000));
        let err = rt.check_indcall(0x7000, 0x0000_1000, 42).unwrap_err();
        assert!(matches!(err, Violation::NotAFunction { .. }));
    }

    #[test]
    fn indcall_rejects_annotation_mismatch() {
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        rt.grant(p, RawCap::write(0x7000, 8));
        rt.grant(p, RawCap::call(0xf000));
        rt.register_function(
            0xf000,
            FnMeta {
                name: "my_xmit".into(),
                ahash: 7,
                module: Some(m),
            },
        );
        let err = rt.check_indcall(0x7000, 0xf000, 8).unwrap_err();
        assert!(matches!(err, Violation::AnnotationMismatch { .. }));
        rt.check_indcall(0x7000, 0xf000, 7).unwrap();
    }

    #[test]
    fn indcall_rejects_writer_without_call_cap() {
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        rt.grant(p, RawCap::write(0x7000, 8));
        rt.register_function(
            0xf000,
            FnMeta {
                name: "detach_pid".into(),
                ahash: 7,
                module: None,
            },
        );
        let err = rt.check_indcall(0x7000, 0xf000, 7).unwrap_err();
        assert!(matches!(err, Violation::IndCallUnauthorized { .. }));
    }

    #[test]
    fn note_zeroed_restores_fast_path() {
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        let cap = RawCap::write(0x7000, 64);
        rt.grant(p, cap);
        assert!(!rt.writer_clean(0x7000));
        // While the capability is held, zeroing must NOT clean the slot.
        rt.note_zeroed(0x7000, 64);
        assert!(!rt.writer_clean(0x7000));
        rt.revoke(p, cap);
        rt.note_zeroed(0x7000, 64);
        assert!(rt.writer_clean(0x7000));
        rt.check_indcall(0x7000, 0x1, 0).unwrap();
    }

    #[test]
    fn wrapper_tokens_validate() {
        let (mut rt, m) = rt_with_module();
        let p = rt.principal_for_name(m, 0x9000);
        let t = ThreadId(0);
        let tok = rt.wrapper_enter(t, Some((m, p)));
        assert_eq!(rt.current(t), Some((m, p)));
        rt.wrapper_exit(t, tok).unwrap();
        assert_eq!(rt.current(t), None);
        assert_eq!(rt.stats.count(GuardKind::FunctionEntry), 1);
        assert_eq!(rt.stats.count(GuardKind::FunctionExit), 1);
    }

    #[test]
    fn ref_types_intern_stably() {
        let mut rt = Runtime::new();
        let a = rt.ref_type("struct pci_dev");
        let b = rt.ref_type("struct pci_dev");
        let c = rt.ref_type("io_port");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(rt.ref_type_name(a), "struct pci_dev");
    }
}
