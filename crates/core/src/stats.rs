//! Guard statistics and deterministic guard costs (Figure 13).
//!
//! The runtime counts every guard it executes, by kind, and charges a
//! deterministic cycle cost. The cost constants are calibrated to the
//! per-guard times the paper measured on its 3.2 GHz testbed (Figure 13,
//! "Time per guard (ns)"), with one simulated cycle = 1 ns, so the
//! regenerated table is directly comparable in shape.

use std::collections::HashMap;

use crate::principal::ModuleId;

/// The guard kinds reported in Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuardKind {
    /// A capability action from a `pre`/`post` annotation (grant, revoke,
    /// transfer, or check).
    AnnotationAction,
    /// Wrapper entry (shadow-stack push, principal switch).
    FunctionEntry,
    /// Wrapper exit (shadow-stack validation, principal restore).
    FunctionExit,
    /// Memory-write permission check.
    MemWrite,
    /// Kernel-side indirect-call check (`lxfi_check_indcall`).
    KernelIndCall,
}

/// All guard kinds, for iteration in reports.
pub const ALL_GUARD_KINDS: [GuardKind; 5] = [
    GuardKind::AnnotationAction,
    GuardKind::FunctionEntry,
    GuardKind::FunctionExit,
    GuardKind::MemWrite,
    GuardKind::KernelIndCall,
];

impl GuardKind {
    /// Row label used in the Figure 13 table.
    pub fn label(self) -> &'static str {
        match self {
            GuardKind::AnnotationAction => "Annotation action",
            GuardKind::FunctionEntry => "Function entry",
            GuardKind::FunctionExit => "Function exit",
            GuardKind::MemWrite => "Mem-write check",
            GuardKind::KernelIndCall => "Kernel ind-call",
        }
    }

    fn index(self) -> usize {
        match self {
            GuardKind::AnnotationAction => 0,
            GuardKind::FunctionEntry => 1,
            GuardKind::FunctionExit => 2,
            GuardKind::MemWrite => 3,
            GuardKind::KernelIndCall => 4,
        }
    }
}

/// Deterministic cycle cost per guard kind.
///
/// Defaults are the paper's measured per-guard ns (Figure 13): annotation
/// action 124, function entry 16, function exit 14, mem-write 51, kernel
/// ind-call 64 (fast path average; a full capability check on the slow
/// path costs `ind_call_slow`).
#[derive(Debug, Clone, Copy)]
pub struct GuardCosts {
    /// Cost of one annotation action.
    pub annotation_action: u64,
    /// Cost of wrapper entry.
    pub function_entry: u64,
    /// Cost of wrapper exit.
    pub function_exit: u64,
    /// Cost of a memory-write check.
    pub mem_write: u64,
    /// Cost of an indirect-call check that the writer-set fast path
    /// resolves (writer set empty).
    pub ind_call_fast: u64,
    /// Cost of an indirect-call check that needs the full capability and
    /// annotation-hash validation (86 ns in Figure 13's e1000 row).
    pub ind_call_slow: u64,
}

impl Default for GuardCosts {
    fn default() -> Self {
        GuardCosts {
            annotation_action: 124,
            function_entry: 16,
            function_exit: 14,
            mem_write: 51,
            ind_call_fast: 64,
            ind_call_slow: 86,
        }
    }
}

/// Counters: number of guards executed and cycles spent, per kind, plus a
/// per-module breakdown of kernel indirect calls (Figure 13 separates
/// "Kernel ind-call all" from "Kernel ind-call e1000").
///
/// In the thread-safe runtime each `GuardHandle` owns its own
/// `GuardStats` written without synchronization on the guard hot path;
/// [`GuardStats::merge`] folds per-thread counters into the shared
/// core's global stats when a handle flushes or retires.
#[derive(Debug, Default, Clone)]
pub struct GuardStats {
    counts: [u64; 5],
    cycles: [u64; 5],
    indcall_by_module: HashMap<ModuleId, (u64, u64)>,
    /// Mem-write checks answered by the epoch-validated write-guard
    /// cache (a subset of the `MemWrite` count; benches and the CI perf
    /// gate report the hit rate).
    pub write_cache_hits: u64,
    /// Mem-write checks that consulted the cache and fell through to the
    /// interval-table probe (`hits + misses` = cache-consulting checks;
    /// kernel-context and stack writes never reach the cache).
    pub write_cache_misses: u64,
    /// Per-principal write-epoch increments caused by revocation. Each
    /// bump wholesale-invalidates one principal's cached intervals, so
    /// this counts how much cached state revocation traffic destroyed.
    pub epoch_bumps: u64,
    /// Gauge: interned writer sets currently referenced by the reverse
    /// writer index (updated by the runtime after every index mutation).
    pub writer_sets_live: u64,
    /// Gauge: writer-set allocations ever performed by the index's
    /// interner, including slot reuses after GC. `ever` growing while
    /// `live` stays flat is the set-GC working.
    pub writer_sets_ever: u64,
    /// Gauge: principals registered and not retired. Together with
    /// `principals_retired` this is the leak meter module churn is
    /// gated on: load → crash → reclaim cycles must return it to the
    /// pre-load level.
    pub principals_live: u64,
    /// Gauge: principals retired by module quarantine or unload.
    /// Monotonic (retirement is permanent), which makes it the logical
    /// clock for the principal gauge pair in [`GuardStats::merge`].
    pub principals_retired: u64,
    /// Principals a `kfree`-style sweep
    /// (`revoke_write_overlapping_everywhere`) actually visited, driven
    /// by the per-shard principal-presence hint.
    pub kfree_hint_visited: u64,
    /// Principals the presence hint let the sweep skip (the full walk
    /// would have probed their tables for nothing).
    pub kfree_hint_skipped: u64,
    /// `transfer` actions resolved by the single-holder fast path: the
    /// reverse writer index showed at most one holder, so the grant moved
    /// principal-to-principal with one shard splice and one epoch-bump
    /// set instead of a `revoke_everywhere` sweep.
    pub transfer_fast: u64,
    /// `transfer` actions that fell back to the full
    /// `revoke_everywhere` sweep (multiple holders, or a non-WRITE cap).
    pub transfer_slow: u64,
    /// `note_zeroed` calls whose range hit only provably-clean writer-map
    /// stripes: the lock-free marked-granule pre-check answered and the
    /// call touched no lock at all.
    pub note_zeroed_fast_skips: u64,
    /// `note_zeroed` calls deferred into the per-handle zero-note buffer
    /// instead of clearing on the packet path.
    pub zero_notes_deferred: u64,
    /// Deferred zero-notes dropped as stale at drain time (a mark or a
    /// coverage revocation touched the stripe after the note was taken;
    /// the bits conservatively stay set).
    pub zero_notes_stale: u64,
}

impl GuardStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one guard of `kind` costing `cycles`.
    pub fn record(&mut self, kind: GuardKind, cycles: u64) {
        let i = kind.index();
        self.counts[i] += 1;
        self.cycles[i] += cycles;
    }

    /// Records a kernel indirect call whose pointer slot was written by
    /// (a principal of) `module`.
    pub fn record_indcall_module(&mut self, module: ModuleId, cycles: u64) {
        let e = self.indcall_by_module.entry(module).or_insert((0, 0));
        e.0 += 1;
        e.1 += cycles;
    }

    /// Number of guards of `kind` executed.
    pub fn count(&self, kind: GuardKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Cycles spent in guards of `kind`.
    pub fn cycles(&self, kind: GuardKind) -> u64 {
        self.cycles[kind.index()]
    }

    /// `(count, cycles)` of kernel indirect calls attributed to `module`.
    pub fn indcall_for_module(&self, module: ModuleId) -> (u64, u64) {
        self.indcall_by_module
            .get(&module)
            .copied()
            .unwrap_or((0, 0))
    }

    /// Fraction of cache-consulting mem-write checks the write-guard
    /// cache answered (0 when none ran).
    pub fn write_cache_hit_rate(&self) -> f64 {
        let total = self.write_cache_hits + self.write_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.write_cache_hits as f64 / total as f64
        }
    }

    /// Total cycles spent in all guards.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Total number of guards executed.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Resets all counters (used between benchmark phases).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Folds `other`'s counters into `self` (per-thread handle stats
    /// merging into the shared core's global stats).
    pub fn merge(&mut self, other: &GuardStats) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
            self.cycles[i] += other.cycles[i];
        }
        for (m, (c, cy)) in &other.indcall_by_module {
            let e = self.indcall_by_module.entry(*m).or_insert((0, 0));
            e.0 += c;
            e.1 += cy;
        }
        self.write_cache_hits += other.write_cache_hits;
        self.write_cache_misses += other.write_cache_misses;
        self.epoch_bumps += other.epoch_bumps;
        // Gauges are levels, not counters: take the pair from the newer
        // snapshot, using the monotonic `ever` allocation counter as the
        // logical clock (`live` may legitimately shrink after GC, so a
        // plain max would pin it at a stale high-water mark).
        if other.writer_sets_ever >= self.writer_sets_ever {
            self.writer_sets_ever = other.writer_sets_ever;
            self.writer_sets_live = other.writer_sets_live;
        }
        // Same discipline for the principal gauge pair, clocked by the
        // monotonic retirement counter (ties broken toward the larger
        // live count: between retirements, registration only grows it).
        if other.principals_retired > self.principals_retired
            || (other.principals_retired == self.principals_retired
                && other.principals_live >= self.principals_live)
        {
            self.principals_retired = other.principals_retired;
            self.principals_live = other.principals_live;
        }
        self.kfree_hint_visited += other.kfree_hint_visited;
        self.kfree_hint_skipped += other.kfree_hint_skipped;
        self.transfer_fast += other.transfer_fast;
        self.transfer_slow += other.transfer_slow;
        self.note_zeroed_fast_skips += other.note_zeroed_fast_skips;
        self.zero_notes_deferred += other.zero_notes_deferred;
        self.zero_notes_stale += other.zero_notes_stale;
    }

    /// Snapshot of `(kind, count, cycles)` rows.
    pub fn rows(&self) -> Vec<(GuardKind, u64, u64)> {
        ALL_GUARD_KINDS
            .iter()
            .map(|&k| (k, self.count(k), self.cycles(k)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_kind() {
        let mut s = GuardStats::new();
        s.record(GuardKind::MemWrite, 51);
        s.record(GuardKind::MemWrite, 51);
        s.record(GuardKind::AnnotationAction, 124);
        assert_eq!(s.count(GuardKind::MemWrite), 2);
        assert_eq!(s.cycles(GuardKind::MemWrite), 102);
        assert_eq!(s.count(GuardKind::AnnotationAction), 1);
        assert_eq!(s.total_count(), 3);
        assert_eq!(s.total_cycles(), 226);
    }

    #[test]
    fn module_attribution() {
        let mut s = GuardStats::new();
        s.record_indcall_module(ModuleId(1), 86);
        s.record_indcall_module(ModuleId(1), 86);
        s.record_indcall_module(ModuleId(2), 86);
        assert_eq!(s.indcall_for_module(ModuleId(1)), (2, 172));
        assert_eq!(s.indcall_for_module(ModuleId(2)), (1, 86));
        assert_eq!(s.indcall_for_module(ModuleId(3)), (0, 0));
    }

    #[test]
    fn default_costs_match_figure_13() {
        let c = GuardCosts::default();
        assert_eq!(c.annotation_action, 124);
        assert_eq!(c.function_entry, 16);
        assert_eq!(c.function_exit, 14);
        assert_eq!(c.mem_write, 51);
    }

    #[test]
    fn cache_hit_rate_counts_only_consulting_checks() {
        let mut s = GuardStats::new();
        assert_eq!(s.write_cache_hit_rate(), 0.0, "no checks yet");
        s.write_cache_hits = 3;
        s.write_cache_misses = 1;
        assert!((s.write_cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_folds_counters_and_keeps_gauges_fresh() {
        let mut a = GuardStats::new();
        a.record(GuardKind::MemWrite, 51);
        a.write_cache_hits = 10;
        a.writer_sets_live = 3;
        let mut b = GuardStats::new();
        b.record(GuardKind::MemWrite, 51);
        b.record_indcall_module(ModuleId(1), 86);
        b.write_cache_hits = 5;
        b.epoch_bumps = 2;
        b.writer_sets_live = 7;
        a.merge(&b);
        assert_eq!(a.count(GuardKind::MemWrite), 2);
        assert_eq!(a.write_cache_hits, 15);
        assert_eq!(a.epoch_bumps, 2);
        assert_eq!(a.indcall_for_module(ModuleId(1)), (1, 86));
        assert_eq!(a.writer_sets_live, 7, "gauge takes the fresher level");
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = GuardStats::new();
        s.record(GuardKind::FunctionEntry, 16);
        s.record_indcall_module(ModuleId(0), 64);
        s.reset();
        assert_eq!(s.total_count(), 0);
        assert_eq!(s.indcall_for_module(ModuleId(0)), (0, 0));
    }
}
