//! Module principals (§3.1) and their naming (§3.3).
//!
//! Each loaded module has a *shared* principal (capabilities visible to
//! every principal in the module — the initial imports land here), a
//! *global* principal (implicit access to the union of all the module's
//! capabilities — used for cross-instance state like econet's socket
//! list), and any number of *instance* principals created on demand.
//!
//! Principals are **named by pointers**: the address of the data structure
//! representing the instance (a socket, a block device, a NIC). A single
//! logical principal may have several names (`pci_dev` and `net_device`
//! for one NIC); `lxfi_princ_alias` binds a new name to an existing
//! principal.

use std::collections::HashMap;

use lxfi_machine::Word;

/// Identifies a loaded module within the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleId(pub u32);

/// Identifies a principal (unique across all modules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrincipalId(pub u32);

/// The role of a principal within its module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrincipalKind {
    /// Capabilities implicitly available to every principal in the module.
    Shared,
    /// Implicitly owns the union of all the module's capabilities.
    Global,
    /// One instance of the module's abstraction.
    Instance,
}

/// Per-module principal bookkeeping.
#[derive(Debug)]
pub struct ModuleInfo {
    /// Module name (diagnostics).
    pub name: String,
    /// The shared principal.
    pub shared: PrincipalId,
    /// The global principal.
    pub global: PrincipalId,
    /// All instance principals, in creation order.
    pub instances: Vec<PrincipalId>,
    /// Pointer-name → principal map (§3.3). Multiple names may alias one
    /// principal.
    pub names: HashMap<Word, PrincipalId>,
}

impl ModuleInfo {
    /// Creates bookkeeping for a new module.
    pub fn new(name: String, shared: PrincipalId, global: PrincipalId) -> Self {
        ModuleInfo {
            name,
            shared,
            global,
            instances: Vec::new(),
            names: HashMap::new(),
        }
    }

    /// Resolves a pointer name to a principal, if bound.
    pub fn lookup_name(&self, name: Word) -> Option<PrincipalId> {
        self.names.get(&name).copied()
    }

    /// Every principal belonging to this module (shared, global, then
    /// instances).
    pub fn all_principals(&self) -> impl Iterator<Item = PrincipalId> + '_ {
        [self.shared, self.global]
            .into_iter()
            .chain(self.instances.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_lookup_and_iteration() {
        let mut m = ModuleInfo::new("econet".into(), PrincipalId(0), PrincipalId(1));
        m.instances.push(PrincipalId(2));
        m.names.insert(0x9000, PrincipalId(2));
        assert_eq!(m.lookup_name(0x9000), Some(PrincipalId(2)));
        assert_eq!(m.lookup_name(0x9008), None);
        let all: Vec<_> = m.all_principals().collect();
        assert_eq!(all, vec![PrincipalId(0), PrincipalId(1), PrincipalId(2)]);
    }
}
