//! Per-thread shadow stacks (§5).
//!
//! The LXFI runtime records, for every wrapper crossing, a return token
//! and the principal context in effect before the crossing. Wrapper exit
//! validates the token (control-flow integrity on returns) and restores
//! the principal. Interrupt entry/exit uses the same mechanism so that a
//! module's privileges are saved while the interrupt handler runs (§3.1).

use crate::principal::{ModuleId, PrincipalId};
use crate::Violation;
use lxfi_machine::Word;

/// The principal context of a thread: `None` means the trusted core
/// kernel is executing.
pub type PrincipalCtx = Option<(ModuleId, PrincipalId)>;

/// One shadow-stack frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowFrame {
    /// Return token issued at wrapper entry and validated at exit.
    pub token: Word,
    /// Principal context saved at entry (restored at exit).
    pub saved: PrincipalCtx,
    /// True if this frame was pushed by interrupt entry.
    pub interrupt: bool,
}

/// A per-kernel-thread shadow stack plus the thread's current principal.
#[derive(Debug, Default)]
pub struct ShadowStack {
    frames: Vec<ShadowFrame>,
    current: PrincipalCtx,
    next_token: Word,
}

impl ShadowStack {
    /// Creates an empty shadow stack (thread starts in kernel context).
    pub fn new() -> Self {
        Self::default()
    }

    /// The thread's current principal context.
    pub fn current(&self) -> PrincipalCtx {
        self.current
    }

    /// Sets the current principal context directly (used by the runtime's
    /// privileged principal-switch entry points, §3.4).
    pub fn set_current(&mut self, ctx: PrincipalCtx) {
        self.current = ctx;
    }

    /// Wrapper entry: saves the current context, switches to `new`, and
    /// returns the token to present at exit.
    pub fn push(&mut self, new: PrincipalCtx) -> Word {
        self.next_token += 1;
        let token = self.next_token;
        self.frames.push(ShadowFrame {
            token,
            saved: self.current,
            interrupt: false,
        });
        self.current = new;
        token
    }

    /// Wrapper exit: validates the return token and restores the saved
    /// principal context.
    pub fn pop(&mut self, token: Word) -> Result<(), Violation> {
        match self.frames.pop() {
            Some(f) if f.token == token => {
                self.current = f.saved;
                Ok(())
            }
            Some(f) => Err(Violation::ShadowStackCorrupted {
                expected: f.token,
                found: token,
            }),
            None => Err(Violation::ShadowStackCorrupted {
                expected: 0,
                found: token,
            }),
        }
    }

    /// Interrupt entry: saves the interrupted context and switches to the
    /// kernel (interrupt handlers run with kernel privilege).
    pub fn interrupt_enter(&mut self) -> Word {
        self.next_token += 1;
        let token = self.next_token;
        self.frames.push(ShadowFrame {
            token,
            saved: self.current,
            interrupt: true,
        });
        self.current = None;
        token
    }

    /// Interrupt exit: restores the interrupted principal context.
    pub fn interrupt_exit(&mut self, token: Word) -> Result<(), Violation> {
        self.pop(token)
    }

    /// Depth of the shadow stack (diagnostics).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Corrupts the top return token (test hook used to demonstrate
    /// return-address-corruption detection).
    pub fn corrupt_top_for_test(&mut self, delta: Word) {
        if let Some(f) = self.frames.last_mut() {
            f.token = f.token.wrapping_add(delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(m: u32, p: u32) -> PrincipalCtx {
        Some((ModuleId(m), PrincipalId(p)))
    }

    #[test]
    fn push_pop_restores_context() {
        let mut s = ShadowStack::new();
        assert_eq!(s.current(), None);
        let t1 = s.push(ctx(0, 1));
        assert_eq!(s.current(), ctx(0, 1));
        let t2 = s.push(ctx(0, 2));
        assert_eq!(s.current(), ctx(0, 2));
        s.pop(t2).unwrap();
        assert_eq!(s.current(), ctx(0, 1));
        s.pop(t1).unwrap();
        assert_eq!(s.current(), None);
    }

    #[test]
    fn token_mismatch_is_detected() {
        let mut s = ShadowStack::new();
        let t = s.push(ctx(0, 1));
        let err = s.pop(t + 99).unwrap_err();
        assert!(matches!(err, Violation::ShadowStackCorrupted { .. }));
    }

    #[test]
    fn corruption_is_detected() {
        let mut s = ShadowStack::new();
        let t = s.push(ctx(0, 1));
        s.corrupt_top_for_test(5);
        assert!(s.pop(t).is_err());
    }

    #[test]
    fn pop_on_empty_is_detected() {
        let mut s = ShadowStack::new();
        assert!(s.pop(1).is_err());
    }

    #[test]
    fn interrupt_saves_and_restores_module_context() {
        let mut s = ShadowStack::new();
        let t = s.push(ctx(3, 7));
        assert_eq!(s.current(), ctx(3, 7));
        let it = s.interrupt_enter();
        assert_eq!(s.current(), None, "interrupt runs as kernel");
        s.interrupt_exit(it).unwrap();
        assert_eq!(s.current(), ctx(3, 7), "module principal restored");
        s.pop(t).unwrap();
    }

    #[test]
    fn nested_interrupts() {
        let mut s = ShadowStack::new();
        let t0 = s.push(ctx(1, 2));
        let i1 = s.interrupt_enter();
        let i2 = s.interrupt_enter();
        s.interrupt_exit(i2).unwrap();
        s.interrupt_exit(i1).unwrap();
        assert_eq!(s.current(), ctx(1, 2));
        s.pop(t0).unwrap();
        assert_eq!(s.depth(), 0);
    }
}
