//! The LXFI runtime — the paper's primary contribution.
//!
//! LXFI extends software fault isolation with two ideas (Mao et al.,
//! SOSP 2011):
//!
//! 1. **API integrity** (§2.2): the contract a kernel interface assumes is
//!    captured as capability annotations (`lxfi-annotations`) and enforced
//!    on every kernel/module control transfer.
//! 2. **Multi-principal modules** (§3.1): a shared module is split into
//!    per-instance principals (named by data-structure pointers), plus a
//!    *shared* principal visible to all instances and a *global* principal
//!    that unions every instance's privileges.
//!
//! This crate implements the runtime half of the system (§5):
//!
//! - per-principal capability tables ([`caps`]) — WRITE ranges in a
//!   binary-searched interval index (the paper's masked-slot hash table
//!   survives as the benchmarked baseline), CALL and REF sets;
//! - compiled annotations ([`compiled`]) — names resolved to dense ids at
//!   registration so enforcement never hashes strings;
//! - the principal registry with pointer-naming and `lxfi_princ_alias`
//!   ([`principal`]);
//! - per-thread shadow stacks saving return tokens and principal context
//!   ([`shadow`]);
//! - writer-set tracking that lets the kernel skip indirect-call checks
//!   for function-pointer slots no module could have written
//!   ([`writer_set`]), backed on the slow path by a reverse writer index
//!   sharded by address region (addr range → interned, refcounted
//!   writer-principal set, [`writer_index`]) so the lookup is sublinear
//!   in the number of principals and grant/revoke splices are bounded by
//!   the shard;
//! - an epoch-validated per-principal write-guard cache ([`epoch_cache`])
//!   so revocation invalidates precisely the principals whose coverage
//!   shrank instead of the whole system's cached guard state;
//! - the annotation-action engine executed at wrapper boundaries
//!   ([`actions`]);
//! - guard statistics for the Figure 13 cost breakdown ([`stats`]);
//! - the [`Runtime`] façade ([`runtime`]) used by the simulated kernel.

pub mod actions;
pub mod caps;
pub mod compiled;
pub mod epoch_cache;
pub mod handle;
pub mod iface;
pub mod principal;
pub mod runtime;
pub mod shadow;
pub mod stats;
pub mod writer_index;
pub mod writer_set;

pub use caps::{CapType, LinearWriteTable, RawCap, RefTypeId, WriteTable};
pub use compiled::CompiledAnn;
pub use epoch_cache::{EpochCache, Replacement, WriteGuardCache, DEFAULT_WAYS};
pub use handle::GuardHandle;
pub use iface::{FnDecl, Param, TypeLayouts};
pub use principal::{ModuleId, PrincipalId, PrincipalKind};
pub use runtime::{
    ConstId, IteratorFn, IteratorId, KfreeSweep, RetireSweep, Runtime, RuntimeCore, ThreadId,
};
pub use stats::{GuardCosts, GuardKind, GuardStats, ALL_GUARD_KINDS};
pub use writer_index::{LinearWriterIndex, WriterIndex, WriterSetId};

use lxfi_machine::Word;

/// A policy violation detected by the LXFI runtime.
///
/// In the paper a violation panics the kernel (§3); in this reproduction it
/// propagates as `Trap::Policy` and the simulated kernel records a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The current principal lacks a WRITE capability for the range.
    MissingWrite {
        /// Offending principal.
        principal: PrincipalId,
        /// Start of the written range.
        addr: Word,
        /// Length of the written range.
        len: u64,
    },
    /// The principal lacks a CALL capability for the target address.
    MissingCall {
        /// Offending principal.
        principal: PrincipalId,
        /// Call target.
        target: Word,
    },
    /// The principal lacks the required REF capability.
    MissingRef {
        /// Offending principal.
        principal: PrincipalId,
        /// REF type name.
        rtype: String,
        /// REF value.
        value: Word,
    },
    /// A kernel indirect call would invoke a pointer written by a module
    /// whose writer lacks a CALL capability for the target (§4.1).
    IndCallUnauthorized {
        /// The function-pointer slot address.
        slot: Word,
        /// The would-be target.
        target: Word,
        /// The writer that lacks the CALL capability.
        writer: PrincipalId,
    },
    /// The target of an indirect call is not a registered function at all
    /// (e.g. a user-space address — the RDS exploit).
    NotAFunction {
        /// The would-be target.
        target: Word,
    },
    /// Annotations of the invoked function and of the function-pointer
    /// type do not match (§4.1).
    AnnotationMismatch {
        /// Hash on the function-pointer type.
        sig_hash: u64,
        /// Hash on the invoked function.
        fn_hash: u64,
    },
    /// A module called a kernel function that carries no annotation — the
    /// safe default is to deny (§2.2).
    UnannotatedFunction {
        /// Kernel symbol name.
        name: String,
    },
    /// Shadow-stack validation failed at wrapper exit (§5).
    ShadowStackCorrupted {
        /// Expected return token.
        expected: Word,
        /// Found token.
        found: Word,
    },
    /// `lxfi_princ_alias` or a principal switch was attempted without the
    /// required capability check (§3.4).
    PrincipalDenied {
        /// Explanation.
        why: String,
    },
    /// An annotation referenced an unregistered capability iterator.
    UnknownIterator {
        /// Iterator name.
        name: String,
    },
    /// An annotation expression failed to evaluate.
    BadExpression {
        /// Explanation.
        why: String,
    },
    /// A capability iterator failed while walking a data structure.
    IteratorFailed {
        /// Iterator name.
        name: String,
        /// Explanation.
        why: String,
    },
}

impl Violation {
    /// The principal whose (lacking or abused) authority this violation
    /// is attributable to, when the record names one. This is what lets
    /// the kernel's fault-containment layer quarantine the *culprit
    /// module* instead of panicking: a policy violation raised in kernel
    /// context (e.g. an indirect call through a module-written slot)
    /// carries the module principal that planted the bad state.
    ///
    /// Violations with no principal in them (shadow-stack corruption,
    /// annotation-hash mismatches, iterator failures, ...) return `None`
    /// and are the caller's problem to classify by execution context.
    pub fn culprit(&self) -> Option<PrincipalId> {
        match self {
            Violation::MissingWrite { principal, .. }
            | Violation::MissingCall { principal, .. }
            | Violation::MissingRef { principal, .. } => Some(*principal),
            Violation::IndCallUnauthorized { writer, .. } => Some(*writer),
            _ => None,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MissingWrite {
                principal,
                addr,
                len,
            } => write!(
                f,
                "principal {principal:?} has no WRITE capability for [{addr:#x}, +{len})"
            ),
            Violation::MissingCall { principal, target } => {
                write!(
                    f,
                    "principal {principal:?} has no CALL capability for {target:#x}"
                )
            }
            Violation::MissingRef {
                principal,
                rtype,
                value,
            } => write!(
                f,
                "principal {principal:?} has no REF({rtype}) capability for {value:#x}"
            ),
            Violation::IndCallUnauthorized {
                slot,
                target,
                writer,
            } => write!(
                f,
                "indirect call via slot {slot:#x}: writer {writer:?} lacks CALL for {target:#x}"
            ),
            Violation::NotAFunction { target } => {
                write!(f, "indirect call target {target:#x} is not a function")
            }
            Violation::AnnotationMismatch { sig_hash, fn_hash } => write!(
                f,
                "annotation hash mismatch: pointer type {sig_hash:#x} vs function {fn_hash:#x}"
            ),
            Violation::UnannotatedFunction { name } => {
                write!(
                    f,
                    "kernel function `{name}` has no annotation (safe default: deny)"
                )
            }
            Violation::ShadowStackCorrupted { expected, found } => write!(
                f,
                "shadow stack corrupted: expected token {expected:#x}, found {found:#x}"
            ),
            Violation::PrincipalDenied { why } => write!(f, "principal operation denied: {why}"),
            Violation::UnknownIterator { name } => {
                write!(f, "unknown capability iterator `{name}`")
            }
            Violation::BadExpression { why } => write!(f, "annotation expression error: {why}"),
            Violation::IteratorFailed { name, why } => {
                write!(f, "capability iterator `{name}` failed: {why}")
            }
        }
    }
}

impl std::error::Error for Violation {}

impl From<Violation> for lxfi_machine::Trap {
    fn from(v: Violation) -> Self {
        lxfi_machine::Trap::Policy(Box::new(v))
    }
}
