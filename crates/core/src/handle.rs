//! Per-thread guard handles over the shared [`RuntimeCore`].
//!
//! A [`GuardHandle`] is what a kernel thread (or a benchmark worker)
//! holds to execute guards concurrently: its own shadow stack, its own
//! kernel-stack window, its own `WAYS`-way epoch-validated write-guard
//! cache, and its own [`GuardStats`]. The write-guard **hit path is
//! completely lock-free**: current principal (thread-local shadow
//! stack), one atomic epoch load from the core, and a few compares in
//! the private cache. Only a miss (or grant/revoke traffic, which lives
//! on the core) takes locks — the probed principal's table mutex, one
//! at a time.
//!
//! The soundness contract with revocation is the epoch protocol (see
//! [`crate::runtime`] module docs): the handle reads the principal's
//! atomic epoch *before* probing the tables and stamps its cache with
//! that pre-probe value, so a revoke that bumps the epoch after
//! removing coverage always invalidates whatever the probe could have
//! seen. The concurrent-revocation stress tests in
//! `tests/concurrent_revocation.rs` race exactly this path.
//!
//! Handle stats merge into the core's global stats on
//! [`GuardHandle::flush_stats`] or drop.

use std::sync::Arc;

use lxfi_machine::Word;

use crate::caps::RawCap;
use crate::epoch_cache::{EpochCache, DEFAULT_WAYS};
use crate::principal::PrincipalId;
use crate::runtime::RuntimeCore;
use crate::shadow::{PrincipalCtx, ShadowStack};
use crate::stats::{GuardCosts, GuardKind, GuardStats};
use crate::Violation;

/// The per-thread guard state shared by [`GuardHandle`] and the
/// single-threaded facade's per-`ThreadId` lanes: shadow stack,
/// kernel-stack window, and the private epoch cache.
#[derive(Debug, Default)]
pub struct GuardState<const W: usize = DEFAULT_WAYS> {
    pub(crate) shadow: ShadowStack,
    pub(crate) kstack: Option<(Word, u64)>,
    pub(crate) cache: EpochCache<W>,
}

impl<const W: usize> GuardState<W> {
    /// Fresh state: kernel context, no stack window, cold cache.
    pub fn new() -> Self {
        GuardState {
            shadow: ShadowStack::new(),
            kstack: None,
            cache: EpochCache::new(),
        }
    }
}

/// Metering context threaded through the core's guard entry points so
/// each caller (facade or handle) charges its own stats.
pub struct GuardEnv<'a> {
    /// Counter sink.
    pub stats: &'a mut GuardStats,
    /// Deterministic guard costs.
    pub costs: &'a GuardCosts,
    /// Writer-set bitmap fast path enabled (ablation switch).
    pub fastpath: bool,
    /// Reusable writer buffer for the indirect-call slow path.
    pub scratch: &'a mut Vec<PrincipalId>,
}

/// The write guard, shared by [`GuardHandle::check_write`] and the
/// facade's `Runtime::check_write`: stack-window shortcut, private
/// epoch-cache probe, then the locked table walk with the epoch read
/// **before** the probe (rule 2 of the soundness discipline).
pub(crate) fn check_write_in<const W: usize>(
    core: &RuntimeCore,
    lane: &mut GuardState<W>,
    stats: &mut GuardStats,
    costs: &GuardCosts,
    cache_enabled: bool,
    addr: Word,
    len: u64,
) -> Result<(), Violation> {
    stats.record(GuardKind::MemWrite, costs.mem_write);
    let Some((_m, p)) = lane.shadow.current() else {
        return Ok(()); // Kernel context: trusted.
    };
    if len == 0 {
        return Ok(()); // Zero-length writes are vacuously permitted.
    }
    let end = addr.checked_add(len);
    if let Some((base, slen)) = lane.kstack {
        if addr >= base && end.is_some_and(|e| e <= base + slen) {
            return Ok(());
        }
    }
    if cache_enabled {
        // An overflowing end never consults the cache (the probe below
        // denies it), so it counts as neither hit nor miss.
        if let Some(e) = end {
            let epoch = core.write_epoch(p);
            if lane.cache.lookup(p, epoch, addr, e) {
                stats.write_cache_hits += 1;
                return Ok(());
            }
            stats.write_cache_misses += 1;
        }
    }
    // Epoch read BEFORE the table probe: a concurrent revoke removes
    // coverage first and bumps after, so a stamp taken here is never
    // newer than a bump that invalidates what the probe returns.
    let epoch = core.write_epoch(p);
    if let Some(interval) = core.write_covering(p, addr, len) {
        if cache_enabled {
            lane.cache.insert(p, epoch, interval);
        }
        Ok(())
    } else {
        Err(Violation::MissingWrite {
            principal: p,
            addr,
            len,
        })
    }
}

/// A cheap per-thread guard executor over a shared [`RuntimeCore`]. See
/// the module docs; construct one per worker thread with
/// [`GuardHandle::new`] (typically from `Runtime::share`'s `Arc`).
pub struct GuardHandle<const W: usize = DEFAULT_WAYS> {
    core: Arc<RuntimeCore>,
    lane: GuardState<W>,
    scratch: Vec<PrincipalId>,
    /// This thread's guard counters (merged into the core's global
    /// stats on [`GuardHandle::flush_stats`] or drop).
    pub stats: GuardStats,
    /// Deterministic guard costs (copied from the default at creation).
    pub costs: GuardCosts,
    /// Per-handle ablation switch mirroring `Runtime::guard_cache_enabled`.
    pub guard_cache_enabled: bool,
    /// Per-handle ablation switch mirroring `Runtime::writer_fastpath`.
    pub writer_fastpath: bool,
}

impl<const W: usize> GuardHandle<W> {
    /// A fresh handle: kernel context, cold private cache, zero stats.
    pub fn new(core: Arc<RuntimeCore>) -> Self {
        GuardHandle {
            core,
            lane: GuardState::new(),
            scratch: Vec::new(),
            stats: GuardStats::new(),
            costs: GuardCosts::default(),
            guard_cache_enabled: true,
            writer_fastpath: true,
        }
    }

    /// The shared core this handle guards against.
    pub fn core(&self) -> &Arc<RuntimeCore> {
        &self.core
    }

    /// Sets this thread's kernel-stack window (always-writable, §3.2).
    pub fn set_kernel_stack(&mut self, base: Word, len: u64) {
        self.lane.kstack = Some((base, len));
    }

    /// Switches the private write-guard cache's replacement policy
    /// (the rotation-vs-policy ablation sweeps both).
    pub fn set_cache_policy(&mut self, policy: crate::epoch_cache::Replacement) {
        self.lane.cache.set_policy(policy);
    }

    /// This thread's shadow stack.
    pub fn shadow(&mut self) -> &mut ShadowStack {
        &mut self.lane.shadow
    }

    /// Sets the current principal context directly (test/bench entry;
    /// kernel threads use the wrapper protocol).
    pub fn set_current(&mut self, ctx: PrincipalCtx) {
        self.lane.shadow.set_current(ctx);
    }

    /// The current principal context.
    pub fn current(&self) -> PrincipalCtx {
        self.lane.shadow.current()
    }

    /// Wrapper entry on this thread (shadow push + principal switch).
    pub fn wrapper_enter(&mut self, new: PrincipalCtx) -> Word {
        let c = self.costs.function_entry;
        self.stats.record(GuardKind::FunctionEntry, c);
        self.lane.shadow.push(new)
    }

    /// Wrapper exit on this thread (token validation + restore).
    pub fn wrapper_exit(&mut self, token: Word) -> Result<(), Violation> {
        let c = self.costs.function_exit;
        self.stats.record(GuardKind::FunctionExit, c);
        self.lane.shadow.pop(token)
    }

    /// Memory-write guard (§4.2) through this thread's private cache;
    /// see [`crate::Runtime::check_write`] for semantics.
    pub fn check_write(&mut self, addr: Word, len: u64) -> Result<(), Violation> {
        check_write_in(
            &self.core,
            &mut self.lane,
            &mut self.stats,
            &self.costs,
            self.guard_cache_enabled,
            addr,
            len,
        )
    }

    /// Module-level CALL guard for this thread's current principal.
    pub fn check_call(&mut self, target: Word) -> Result<(), Violation> {
        let Some((_m, p)) = self.lane.shadow.current() else {
            return Ok(());
        };
        if self.core.owns(p, RawCap::call(target)) {
            Ok(())
        } else {
            Err(Violation::MissingCall {
                principal: p,
                target,
            })
        }
    }

    /// Kernel indirect-call check (§4.1) charged to this thread's stats.
    pub fn check_indcall(
        &mut self,
        slot: Word,
        target: Word,
        sig_hash: u64,
    ) -> Result<(), Violation> {
        let mut env = GuardEnv {
            stats: &mut self.stats,
            costs: &self.costs,
            fastpath: self.writer_fastpath,
            scratch: &mut self.scratch,
        };
        self.core.check_indcall(&mut env, slot, target, sig_hash)
    }

    /// Merges this thread's stats into the core's global stats and
    /// zeroes the local counters.
    pub fn flush_stats(&mut self) {
        self.core.merge_stats(&self.stats);
        self.stats.reset();
    }
}

impl<const W: usize> Drop for GuardHandle<W> {
    fn drop(&mut self) {
        self.core.merge_stats(&self.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use crate::ModuleId;

    fn world() -> (Runtime, ModuleId) {
        let mut rt = Runtime::new();
        let m = rt.register_module("mt");
        (rt, m)
    }

    #[test]
    fn handle_guards_against_shared_grants() {
        let (mut rt, m) = world();
        let p = rt.principal_for_name(m, 0x9000);
        rt.grant(p, RawCap::write(0x5000, 64));
        let mut h: GuardHandle = GuardHandle::new(rt.share());
        h.set_current(Some((m, p)));
        h.check_write(0x5000, 8).unwrap(); // miss: fills the cache
        h.check_write(0x5038, 8).unwrap(); // hit: same covering interval
        assert!(h.check_write(0x5040, 8).is_err());
        assert_eq!(h.stats.write_cache_hits, 1);
        h.check_write(0x5000, 8).unwrap();
        assert_eq!(h.stats.write_cache_hits, 2);
    }

    #[test]
    fn facade_revoke_invalidates_handle_cache() {
        let (mut rt, m) = world();
        let p = rt.principal_for_name(m, 0x9000);
        let cap = RawCap::write(0x5000, 64);
        rt.grant(p, cap);
        let mut h: GuardHandle = GuardHandle::new(rt.share());
        h.set_current(Some((m, p)));
        h.check_write(0x5000, 8).unwrap(); // primes h's private cache
        rt.revoke(p, cap);
        assert!(
            h.check_write(0x5000, 8).is_err(),
            "epoch bump must kill the stale cached interval"
        );
    }

    #[test]
    fn unrelated_revoke_leaves_handle_cache_hot() {
        let (mut rt, m) = world();
        let a = rt.principal_for_name(m, 0x9000);
        let b = rt.principal_for_name(m, 0xa000);
        rt.grant(a, RawCap::write(0x5000, 64));
        rt.grant(b, RawCap::write(0x6000, 64));
        let mut h: GuardHandle = GuardHandle::new(rt.share());
        h.set_current(Some((m, a)));
        h.check_write(0x5000, 8).unwrap();
        h.stats.reset();
        rt.revoke(b, RawCap::write(0x6000, 64));
        h.check_write(0x5008, 8).unwrap();
        assert_eq!(h.stats.write_cache_hits, 1);
        assert_eq!(h.stats.write_cache_misses, 0);
    }

    #[test]
    fn shared_revoke_invalidates_instance_caches_on_every_handle() {
        let (mut rt, m) = world();
        let shared = rt.shared_principal(m);
        let a = rt.principal_for_name(m, 0x9000);
        rt.grant(shared, RawCap::write(0x5000, 64));
        let mut h1: GuardHandle = GuardHandle::new(rt.share());
        let mut h2: GuardHandle = GuardHandle::new(rt.share());
        h1.set_current(Some((m, a)));
        h2.set_current(Some((m, a)));
        h1.check_write(0x5000, 8).unwrap(); // both caches hold the
        h2.check_write(0x5000, 8).unwrap(); // shared-derived interval
        rt.revoke(shared, RawCap::write(0x5000, 64));
        assert!(h1.check_write(0x5000, 8).is_err());
        assert!(h2.check_write(0x5000, 8).is_err());
    }

    #[test]
    fn handle_stats_flush_into_core() {
        let (mut rt, m) = world();
        let p = rt.principal_for_name(m, 0x9000);
        rt.grant(p, RawCap::write(0x5000, 64));
        let core = rt.share();
        {
            let mut h: GuardHandle = GuardHandle::new(core.clone());
            h.set_current(Some((m, p)));
            h.check_write(0x5000, 8).unwrap();
            h.check_write(0x5000, 8).unwrap();
            h.flush_stats();
            assert_eq!(h.stats.count(GuardKind::MemWrite), 0, "local reset");
            h.check_write(0x5000, 8).unwrap();
            // The third check merges on drop.
        }
        let g = core.global_stats();
        assert_eq!(g.count(GuardKind::MemWrite), 3);
        assert_eq!(g.write_cache_hits, 2);
    }

    #[test]
    fn kernel_stack_window_is_per_handle() {
        let (mut rt, m) = world();
        let p = rt.principal_for_name(m, 0x9000);
        let mut h: GuardHandle = GuardHandle::new(rt.share());
        h.set_current(Some((m, p)));
        assert!(h.check_write(0xffff_9000_0000_0100, 8).is_err());
        h.set_kernel_stack(0xffff_9000_0000_0000, 0x2000);
        h.check_write(0xffff_9000_0000_0100, 8).unwrap();
        assert!(h.check_write(0xffff_9000_0000_2000, 8).is_err());
    }

    #[test]
    fn wrapper_protocol_works_on_handles() {
        let (mut rt, m) = world();
        let p = rt.principal_for_name(m, 0x9000);
        let mut h: GuardHandle = GuardHandle::new(rt.share());
        let tok = h.wrapper_enter(Some((m, p)));
        assert_eq!(h.current(), Some((m, p)));
        h.wrapper_exit(tok).unwrap();
        assert_eq!(h.current(), None);
        assert_eq!(h.stats.count(GuardKind::FunctionEntry), 1);
        assert_eq!(h.stats.count(GuardKind::FunctionExit), 1);
    }
}
