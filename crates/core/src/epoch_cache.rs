//! Epoch-validated per-principal write-guard cache.
//!
//! The write guard ([`crate::Runtime::check_write`]) runs on every
//! un-elided module store, and module code overwhelmingly issues *runs*
//! of stores into the same few objects (packet payloads, private
//! structs, ring descriptors). The original cache was a single global
//! `(principal, start, end)` entry cleared by **every** revocation in
//! the system — so a driver revoking one of *its* capabilities evicted
//! every other module's hot store path, degrading the next store of each
//! to a full interval-table probe.
//!
//! This module replaces it with a small **set-associative cache per
//! principal** ([`EpochCache`], `WAYS` covering intervals each),
//! validated by a **per-principal epoch counter** owned by the runtime
//! core:
//!
//! - a successful guard probe inserts its covering grant interval,
//!   stamped with the principal's current epoch;
//! - a lookup hits only if the stamped epoch still equals the
//!   principal's current epoch *and* a cached interval covers the write;
//! - revocation bumps the epochs of exactly the principals whose
//!   coverage could have shrunk (the revokee plus its hierarchy
//!   observers, see `RuntimeCore::bump_write_epochs`), which invalidates
//!   their cached intervals wholesale in O(1) without touching anyone
//!   else's.
//!
//! Since the thread-safe refactor, epochs live in the shared
//! [`crate::RuntimeCore`] as atomics while each thread's
//! [`crate::GuardHandle`] owns a private `EpochCache` — so the cache is
//! written lock-free by exactly one thread and validated against the
//! globally visible epoch on every lookup. A revoke on any thread bumps
//! the atomic epoch, and every other thread's stale entries die on
//! their next comparison without any cross-thread eviction traffic.
//!
//! Grants never bump epochs: a cached interval asserts "this principal
//! may write `[start, end)`", and granting *more* authority cannot
//! falsify it. Only revocation can, and only for the principals that
//! could observe the revoked coverage.
//!
//! The cache stores only positive decisions. A denied write is never
//! cached, so a later grant is visible immediately.
//!
//! The associativity is a const parameter so `lxfi-bench`'s ablation
//! can sweep 1/2/4/8 ways over the netperf store pattern; the runtime
//! paths use [`WriteGuardCache`] (= [`DEFAULT_WAYS`]-way), which the
//! ablation table in the README justifies.

use lxfi_machine::Word;

use crate::principal::PrincipalId;

/// Default associativity: covering intervals remembered per principal.
/// Module code rarely interleaves stores into more than a handful of
/// objects between revocations; four ways cover the packet-TX workload
/// with a >99% hit rate while keeping lookup a few compares (see the
/// WAYS ablation in `lxfi-bench`).
pub const DEFAULT_WAYS: usize = 4;

/// Backwards-compatible alias for the pre-parameterized constant.
pub const WAYS: usize = DEFAULT_WAYS;

/// Replacement policy for a full cache set.
///
/// Round-robin is optimal while the rotation fits the ways but falls
/// off a cliff at `objects = ways + 1`: a cyclic stream always evicts
/// the next-needed interval, so the hit rate collapses to ~0 (the WAYS
/// ablation in `lxfi-bench` shows the cliff). The victim-entry scheme
/// is scan-resistant: conflict misses replace only the **most recently
/// inserted** way (the "victim" slot), protecting the resident
/// intervals, so a rotation one-or-two objects too wide still hits on
/// `W-1` of them. To stay adaptive across phase changes (a completely
/// new working set), more than `2W` consecutive conflict misses without
/// a single hit fall back to one round-robin step each, walking the
/// stale residents out — the threshold is above `W` so a rotation up to
/// `~3W` objects wide (hits on the `W-1` residents interleave the miss
/// runs) never trips it. The ablation table justifies the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Evict ways in insertion order (the pre-redesign behavior).
    RoundRobin,
    /// Scan-resistant victim-entry replacement (the default).
    #[default]
    Victim,
}

/// One cached covering interval `[start, end)`.
#[derive(Debug, Clone, Copy, Default)]
struct WayEntry {
    start: Word,
    end: Word,
}

/// One principal's cache set: up to `W` intervals, all stamped with
/// the epoch they were filled under. A stale epoch invalidates the whole
/// set lazily — no revocation-time walk.
#[derive(Debug, Clone, Copy)]
struct CacheSet<const W: usize> {
    epoch: u64,
    len: u8,
    cursor: u8,
    /// Conflict misses since the set last hit (victim policy's
    /// phase-change detector; saturates).
    misses_since_hit: u8,
    ways: [WayEntry; W],
}

impl<const W: usize> Default for CacheSet<W> {
    fn default() -> Self {
        CacheSet {
            epoch: 0,
            len: 0,
            cursor: 0,
            misses_since_hit: 0,
            ways: [WayEntry::default(); W],
        }
    }
}

/// The write-guard cache: one `CacheSet` per principal, grown lazily
/// as principals first complete a guarded write.
#[derive(Debug)]
pub struct EpochCache<const W: usize> {
    sets: Vec<CacheSet<W>>,
    policy: Replacement,
}

/// The runtime's write-guard cache ([`DEFAULT_WAYS`]-way).
pub type WriteGuardCache = EpochCache<DEFAULT_WAYS>;

impl<const W: usize> Default for EpochCache<W> {
    fn default() -> Self {
        EpochCache {
            sets: Vec::new(),
            policy: Replacement::default(),
        }
    }
}

impl<const W: usize> EpochCache<W> {
    /// Creates an empty cache with the default replacement policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache with an explicit replacement policy (the
    /// WAYS/policy ablation sweeps both).
    pub fn with_policy(policy: Replacement) -> Self {
        EpochCache {
            sets: Vec::new(),
            policy,
        }
    }

    /// The replacement policy in force.
    pub fn policy(&self) -> Replacement {
        self.policy
    }

    /// Switches the replacement policy (ablation hook; takes effect on
    /// subsequent conflict misses).
    pub fn set_policy(&mut self, policy: Replacement) {
        self.policy = policy;
    }

    /// The cache's associativity.
    pub const fn ways() -> usize {
        W
    }

    /// True if a covering interval cached for `p` under the current
    /// `epoch` covers `[addr, end)`. Hits feed the victim policy's
    /// phase-change detector, hence `&mut`.
    #[inline]
    pub fn lookup(&mut self, p: PrincipalId, epoch: u64, addr: Word, end: Word) -> bool {
        let Some(set) = self.sets.get_mut(p.0 as usize) else {
            return false;
        };
        if set.epoch != epoch {
            return false;
        }
        let hit = set.ways[..set.len as usize]
            .iter()
            .any(|w| w.start <= addr && end <= w.end);
        if hit {
            set.misses_since_hit = 0;
        }
        hit
    }

    /// Records `interval` as a covering grant for `p` under `epoch`.
    /// If the set was filled under an older epoch it is reset first
    /// (the lazy half of epoch invalidation). Replacement within an
    /// epoch follows [`Replacement`].
    pub fn insert(&mut self, p: PrincipalId, epoch: u64, interval: (Word, Word)) {
        let i = p.0 as usize;
        if i >= self.sets.len() {
            self.sets.resize_with(i + 1, CacheSet::default);
        }
        let set = &mut self.sets[i];
        if set.epoch != epoch {
            set.len = 0;
            set.cursor = 0;
            set.misses_since_hit = 0;
            set.epoch = epoch;
        }
        let slot = if (set.len as usize) < W {
            // Fill empty ways first under either policy.
            let s = set.len;
            set.cursor = (s + 1) % W as u8;
            s
        } else {
            match self.policy {
                Replacement::RoundRobin => {
                    let s = set.cursor;
                    set.cursor = (s + 1) % W as u8;
                    s
                }
                Replacement::Victim => {
                    set.misses_since_hit = set.misses_since_hit.saturating_add(1);
                    // Clamp below the u8 saturation point so the
                    // fallback stays reachable at any W.
                    if set.misses_since_hit as usize > (2 * W).min(200) {
                        // No hit in over 2W conflict misses: the working
                        // set moved — walk the stale residents out.
                        let s = set.cursor;
                        set.cursor = (s + 1) % W as u8;
                        s
                    } else {
                        // Scan resistance: replace only the victim slot
                        // (the most recently inserted way), keeping the
                        // W-1 resident intervals hot.
                        (W - 1) as u8
                    }
                }
            }
        };
        set.ways[slot as usize] = WayEntry {
            start: interval.0,
            end: interval.1,
        };
        set.len = set.len.max(slot + 1);
    }

    /// Number of principals with an allocated cache set (diagnostics).
    pub fn principal_sets(&self) -> usize {
        self.sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: PrincipalId = PrincipalId(0);
    const P1: PrincipalId = PrincipalId(1);

    #[test]
    fn miss_when_empty_or_unknown_principal() {
        let mut c = WriteGuardCache::new();
        assert!(!c.lookup(P0, 0, 0x1000, 0x1008));
        assert!(!c.lookup(PrincipalId(99), 0, 0x1000, 0x1008));
    }

    #[test]
    fn hit_requires_coverage_and_epoch() {
        let mut c = WriteGuardCache::new();
        c.insert(P0, 3, (0x1000, 0x1100));
        assert!(c.lookup(P0, 3, 0x1000, 0x1008));
        assert!(c.lookup(P0, 3, 0x10f8, 0x1100), "tail bytes covered");
        assert!(!c.lookup(P0, 3, 0x10f8, 0x1101), "past the interval");
        assert!(!c.lookup(P0, 4, 0x1000, 0x1008), "stale epoch misses");
        assert!(!c.lookup(P1, 3, 0x1000, 0x1008), "per-principal isolation");
    }

    #[test]
    fn insert_under_new_epoch_resets_the_set() {
        let mut c = WriteGuardCache::new();
        c.insert(P0, 1, (0x1000, 0x1100));
        c.insert(P0, 1, (0x2000, 0x2100));
        c.insert(P0, 2, (0x3000, 0x3100));
        assert!(!c.lookup(P0, 2, 0x1000, 0x1008), "old ways dropped");
        assert!(!c.lookup(P0, 2, 0x2000, 0x2008));
        assert!(c.lookup(P0, 2, 0x3000, 0x3008));
    }

    #[test]
    fn associative_ways_hold_multiple_objects() {
        let mut c: EpochCache<DEFAULT_WAYS> = EpochCache::with_policy(Replacement::RoundRobin);
        for i in 0..DEFAULT_WAYS as u64 {
            c.insert(P0, 0, (0x1000 * (i + 1), 0x1000 * (i + 1) + 0x100));
        }
        for i in 0..DEFAULT_WAYS as u64 {
            assert!(c.lookup(P0, 0, 0x1000 * (i + 1), 0x1000 * (i + 1) + 8));
        }
        // A fifth insert evicts round-robin (the oldest way).
        c.insert(P0, 0, (0x9000, 0x9100));
        assert!(!c.lookup(P0, 0, 0x1000, 0x1008), "way 0 evicted");
        assert!(c.lookup(P0, 0, 0x9000, 0x9008));
        assert!(c.lookup(P0, 0, 0x2000, 0x2008), "younger ways survive");
    }

    #[test]
    fn victim_policy_protects_residents_from_scans() {
        // Default policy: a conflict miss replaces the victim way only.
        let mut c = WriteGuardCache::new();
        assert_eq!(c.policy(), Replacement::Victim);
        for i in 0..DEFAULT_WAYS as u64 {
            c.insert(P0, 0, (0x1000 * (i + 1), 0x1000 * (i + 1) + 0x100));
        }
        // Touch the residents so the set is "hitting".
        for i in 0..DEFAULT_WAYS as u64 {
            assert!(c.lookup(P0, 0, 0x1000 * (i + 1), 0x1000 * (i + 1) + 8));
        }
        // A scan of fresh objects churns only the victim slot.
        c.insert(P0, 0, (0x9000, 0x9100));
        c.insert(P0, 0, (0xa000, 0xa100));
        assert!(c.lookup(P0, 0, 0x1000, 0x1008), "resident way survives");
        assert!(c.lookup(P0, 0, 0x2000, 0x2008), "resident way survives");
        assert!(c.lookup(P0, 0, 0x3000, 0x3008), "resident way survives");
        assert!(!c.lookup(P0, 0, 0x9000, 0x9008), "victim churned out");
        assert!(c.lookup(P0, 0, 0xa000, 0xa008), "latest insert resident");
    }

    #[test]
    fn victim_policy_adapts_to_a_phase_change() {
        // With no hits at all, consecutive conflict misses eventually
        // fall back to round-robin and walk the stale residents out.
        let mut c = WriteGuardCache::new();
        for i in 0..DEFAULT_WAYS as u64 {
            c.insert(P0, 0, (0x1000 * (i + 1), 0x1000 * (i + 1) + 0x100));
        }
        // New working set, never touching the old one.
        let obj = |i: u64| (0x100_0000 + i * 0x1000, 0x100_0000 + i * 0x1000 + 0x100);
        for round in 0..4u64 {
            for i in 0..DEFAULT_WAYS as u64 {
                let (s, e) = obj(i);
                if !c.lookup(P0, 0, s, s + 8) {
                    c.insert(P0, 0, (s, e));
                }
                let _ = round;
            }
        }
        for i in 0..DEFAULT_WAYS as u64 {
            let (s, _) = obj(i);
            assert!(c.lookup(P0, 0, s, s + 8), "new set resident after churn");
        }
    }

    #[test]
    fn one_way_cache_holds_exactly_one_object() {
        let mut c: EpochCache<1> = EpochCache::new();
        assert_eq!(EpochCache::<1>::ways(), 1);
        c.insert(P0, 0, (0x1000, 0x1100));
        assert!(c.lookup(P0, 0, 0x1000, 0x1008));
        c.insert(P0, 0, (0x2000, 0x2100));
        assert!(!c.lookup(P0, 0, 0x1000, 0x1008), "evicted by the insert");
        assert!(c.lookup(P0, 0, 0x2000, 0x2008));
    }

    #[test]
    fn eight_way_cache_survives_wider_rotation() {
        let mut c: EpochCache<8> = EpochCache::new();
        for i in 0..8u64 {
            c.insert(P0, 0, (0x1000 * (i + 1), 0x1000 * (i + 1) + 0x100));
        }
        for i in 0..8u64 {
            assert!(c.lookup(P0, 0, 0x1000 * (i + 1), 0x1000 * (i + 1) + 8));
        }
    }
}
