//! Reverse writer index (§5 scaling): address range → writer principals.
//!
//! The indirect-call slow path asks "which principals hold WRITE coverage
//! of this function-pointer slot?". The paper answers by walking the
//! global principal list — linear in the number of principals, and the
//! list grows with every module instance. This module inverts the
//! question: a sorted map of **disjoint address intervals**, each carrying
//! an **interned set** of the principals granted WRITE over it, is
//! maintained incrementally on every WRITE grant and revocation, so the
//! lookup is a binary search plus a walk of the (small) writer set —
//! O(log intervals + |writers|) instead of O(principals).
//!
//! Writer sets are interned like the runtime's REF-type names: a sorted,
//! deduplicated `Vec<PrincipalId>` maps to a dense [`WriterSetId`], so
//! the many intervals produced by overlapping grants from the same
//! principals share one set allocation, and set identity is a `u32`
//! compare (which is also what lets adjacent intervals coalesce).
//!
//! The paper's traversal survives as [`LinearWriterIndex`] — per-principal
//! [`WriteTable`]s probed one by one — mirroring the `LinearWriteTable`
//! treatment of PR 1: the old structure stays in-tree as the measured
//! baseline for `lxfi-bench` and as a property-test oracle.
//!
//! # Semantics
//!
//! A principal is a *writer of `[addr, addr+len)`* when one of its grants
//! **overlaps any byte** of the range. (The pre-index slow path required
//! a single grant to *cover* the whole slot; overlap is strictly more
//! conservative — a principal that can corrupt even one byte of a
//! function pointer is a writer — and is what both the index and the
//! linear baseline implement.)
//!
//! # Overflow discipline
//!
//! Identical to [`WriteTable`]: grant ends saturate at `Word::MAX`
//! (exclusive), zero-length ranges grant/match nothing, and query ends
//! saturate rather than wrap.

use std::collections::HashMap;

use lxfi_machine::Word;

use crate::caps::WriteTable;
use crate::principal::PrincipalId;

/// Interned id of a sorted, deduplicated set of writer principals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WriterSetId(pub u32);

/// The interned empty set (id 0 by construction).
pub const EMPTY_WRITERS: WriterSetId = WriterSetId(0);

/// Interns writer sets: identical sets share one id, so interval
/// entries are a `u32` and set equality is an integer compare.
#[derive(Debug)]
struct SetInterner {
    sets: Vec<Vec<PrincipalId>>,
    ids: HashMap<Vec<PrincipalId>, WriterSetId>,
}

impl SetInterner {
    fn new() -> Self {
        let mut it = SetInterner {
            sets: Vec::new(),
            ids: HashMap::new(),
        };
        it.intern(Vec::new()); // id 0 = the empty set
        it
    }

    /// Interns a sorted, deduplicated principal set.
    fn intern(&mut self, set: Vec<PrincipalId>) -> WriterSetId {
        debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "sorted + dedup'd");
        if let Some(&id) = self.ids.get(&set) {
            return id;
        }
        let id = WriterSetId(self.sets.len() as u32);
        self.sets.push(set.clone());
        self.ids.insert(set, id);
        id
    }

    fn get(&self, id: WriterSetId) -> &[PrincipalId] {
        &self.sets[id.0 as usize]
    }

    /// The set `sid ∪ {p}`.
    fn with(&mut self, sid: WriterSetId, p: PrincipalId) -> WriterSetId {
        let cur = self.get(sid);
        match cur.binary_search(&p) {
            Ok(_) => sid,
            Err(pos) => {
                let mut v = cur.to_vec();
                v.insert(pos, p);
                self.intern(v)
            }
        }
    }

    /// The set `sid ∖ {p}`.
    fn without(&mut self, sid: WriterSetId, p: PrincipalId) -> WriterSetId {
        let cur = self.get(sid);
        match cur.binary_search(&p) {
            Err(_) => sid,
            Ok(pos) => {
                if cur.len() == 1 {
                    return EMPTY_WRITERS;
                }
                let mut v = cur.to_vec();
                v.remove(pos);
                self.intern(v)
            }
        }
    }

    fn singleton(&mut self, p: PrincipalId) -> WriterSetId {
        self.intern(vec![p])
    }

    fn len(&self) -> usize {
        self.sets.len()
    }
}

/// Clamps a range so its exclusive end saturates at `Word::MAX`
/// (the same discipline as `WriteTable`).
#[inline]
fn clamp_size(addr: Word, size: u64) -> u64 {
    size.min(Word::MAX - addr)
}

/// The reverse writer index: disjoint, sorted `[start, end)` intervals,
/// each mapped to a non-empty interned writer set. Touching intervals
/// with the same set are coalesced on every mutation, so the entry count
/// tracks the number of *distinct-coverage* regions, not the number of
/// grants.
#[derive(Debug)]
pub struct WriterIndex {
    starts: Vec<Word>,
    /// Exclusive ends, parallel to `starts`. Disjointness makes this
    /// vector sorted too, which the window search relies on.
    ends: Vec<Word>,
    sets: Vec<WriterSetId>,
    interner: SetInterner,
}

impl Default for WriterIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl WriterIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        WriterIndex {
            starts: Vec::new(),
            ends: Vec::new(),
            sets: Vec::new(),
            interner: SetInterner::new(),
        }
    }

    /// Indices of the entries overlapping `[a, e)`: `lo..hi`.
    #[inline]
    fn window(&self, a: Word, e: Word) -> (usize, usize) {
        let lo = self.ends.partition_point(|&x| x <= a);
        let hi = self.starts.partition_point(|&s| s < e);
        (lo, hi.max(lo))
    }

    /// Replaces entries `lo..hi` with `repl`, coalescing touching
    /// equal-set segments.
    fn splice(&mut self, lo: usize, hi: usize, repl: Vec<(Word, Word, WriterSetId)>) {
        let mut merged: Vec<(Word, Word, WriterSetId)> = Vec::with_capacity(repl.len());
        for seg in repl {
            debug_assert!(seg.0 < seg.1, "non-empty segment");
            if let Some(last) = merged.last_mut() {
                if last.1 == seg.0 && last.2 == seg.2 {
                    last.1 = seg.1;
                    continue;
                }
            }
            merged.push(seg);
        }
        self.starts.splice(lo..hi, merged.iter().map(|s| s.0));
        self.ends.splice(lo..hi, merged.iter().map(|s| s.1));
        self.sets.splice(lo..hi, merged.iter().map(|s| s.2));
    }

    /// Records that `p` was granted WRITE over `[addr, addr+size)`:
    /// existing intervals split at the grant's boundaries and union `p`
    /// in; uncovered gaps become `{p}` intervals. Idempotent.
    pub fn add(&mut self, p: PrincipalId, addr: Word, size: u64) {
        let size = clamp_size(addr, size);
        if size == 0 {
            return;
        }
        let e = addr + size;
        let (wlo, whi) = self.window(addr, e);
        let mut lo = wlo;
        let mut hi = whi;
        let mut out = Vec::new();
        // Pull a touching left neighbor into the splice so a coalescible
        // boundary merges instead of fragmenting.
        if wlo > 0 && self.ends[wlo - 1] == addr {
            lo = wlo - 1;
            out.push((self.starts[lo], self.ends[lo], self.sets[lo]));
        }
        let mut cursor = addr;
        for j in wlo..whi {
            let (s, en, sid) = (self.starts[j], self.ends[j], self.sets[j]);
            let ov_lo = s.max(addr);
            let ov_hi = en.min(e);
            if s < ov_lo {
                out.push((s, ov_lo, sid));
            }
            if cursor < ov_lo {
                let single = self.interner.singleton(p);
                out.push((cursor, ov_lo, single));
            }
            let merged = self.interner.with(sid, p);
            out.push((ov_lo, ov_hi, merged));
            if en > ov_hi {
                out.push((ov_hi, en, sid));
            }
            cursor = ov_hi;
        }
        if cursor < e {
            let single = self.interner.singleton(p);
            out.push((cursor, e, single));
        }
        if whi < self.starts.len() && self.starts[whi] == e {
            out.push((self.starts[whi], self.ends[whi], self.sets[whi]));
            hi = whi + 1;
        }
        self.splice(lo, hi, out);
    }

    /// Removes `p` from the writer sets of `[addr, addr+size)`, splitting
    /// intervals at the boundaries; intervals whose set empties are
    /// dropped. A no-op where `p` is not a writer.
    ///
    /// Callers revoking one grant must afterwards [`add`](Self::add) back
    /// any of `p`'s *other* grants still overlapping the range — the
    /// index stores merged coverage, not individual grants.
    pub fn remove(&mut self, p: PrincipalId, addr: Word, size: u64) {
        let size = clamp_size(addr, size);
        if size == 0 {
            return;
        }
        let e = addr + size;
        let (wlo, whi) = self.window(addr, e);
        let mut lo = wlo;
        let mut hi = whi;
        let mut out = Vec::new();
        if wlo > 0 && self.ends[wlo - 1] == addr {
            lo = wlo - 1;
            out.push((self.starts[lo], self.ends[lo], self.sets[lo]));
        }
        for j in wlo..whi {
            let (s, en, sid) = (self.starts[j], self.ends[j], self.sets[j]);
            let ov_lo = s.max(addr);
            let ov_hi = en.min(e);
            if s < ov_lo {
                out.push((s, ov_lo, sid));
            }
            let shrunk = self.interner.without(sid, p);
            if shrunk != EMPTY_WRITERS {
                out.push((ov_lo, ov_hi, shrunk));
            }
            if en > ov_hi {
                out.push((ov_hi, en, sid));
            }
        }
        if whi < self.starts.len() && self.starts[whi] == e {
            out.push((self.starts[whi], self.ends[whi], self.sets[whi]));
            hi = whi + 1;
        }
        self.splice(lo, hi, out);
    }

    /// True if any writer interval overlaps `[addr, addr+len)` (query end
    /// saturates at `Word::MAX`).
    pub fn overlaps(&self, addr: Word, len: u64) -> bool {
        if len == 0 {
            return false;
        }
        let e = addr.saturating_add(len);
        let (lo, hi) = self.window(addr, e);
        lo < hi
    }

    /// Deduplicated writer principals of `[addr, addr+len)`, in interval
    /// order. Allocation-free: the iterator yields straight out of the
    /// interned sets (the common case is a single covering interval).
    pub fn writers_over(&self, addr: Word, len: u64) -> WritersOver<'_> {
        let (lo, hi) = if len == 0 {
            (0, 0)
        } else {
            let e = addr.saturating_add(len);
            self.window(addr, e)
        };
        WritersOver {
            index: self,
            lo,
            hi,
            j: lo,
            k: 0,
        }
    }

    /// The interned set for an id (diagnostics / bench assertions).
    pub fn set(&self, id: WriterSetId) -> &[PrincipalId] {
        self.interner.get(id)
    }

    /// Number of live intervals (diagnostics).
    pub fn interval_count(&self) -> usize {
        self.starts.len()
    }

    /// Number of distinct interned writer sets ever created, including
    /// the empty set (diagnostics; interned sets are never freed).
    pub fn set_count(&self) -> usize {
        self.interner.len()
    }

    /// Iterates `(start, end, writers)` over all intervals (diagnostics).
    pub fn intervals(&self) -> impl Iterator<Item = (Word, Word, &[PrincipalId])> + '_ {
        (0..self.starts.len()).map(move |i| {
            (
                self.starts[i],
                self.ends[i],
                self.interner.get(self.sets[i]),
            )
        })
    }

    /// Panics unless the structural invariants hold: sorted disjoint
    /// non-empty intervals, non-empty sorted writer sets, and no
    /// coalescible (touching, equal-set) neighbors. Test/proptest hook.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        assert_eq!(self.starts.len(), self.ends.len());
        assert_eq!(self.starts.len(), self.sets.len());
        for i in 0..self.starts.len() {
            assert!(self.starts[i] < self.ends[i], "interval {i} non-empty");
            assert_ne!(self.sets[i], EMPTY_WRITERS, "interval {i} has writers");
            let set = self.interner.get(self.sets[i]);
            assert!(!set.is_empty());
            assert!(set.windows(2).all(|w| w[0] < w[1]), "set sorted");
            if i + 1 < self.starts.len() {
                assert!(self.ends[i] <= self.starts[i + 1], "disjoint + sorted");
                assert!(
                    !(self.ends[i] == self.starts[i + 1] && self.sets[i] == self.sets[i + 1]),
                    "touching equal-set intervals must coalesce"
                );
            }
        }
    }
}

/// Iterator over the deduplicated writers of a range; see
/// [`WriterIndex::writers_over`].
pub struct WritersOver<'a> {
    index: &'a WriterIndex,
    lo: usize,
    hi: usize,
    j: usize,
    k: usize,
}

impl Iterator for WritersOver<'_> {
    type Item = PrincipalId;

    fn next(&mut self) -> Option<PrincipalId> {
        while self.j < self.hi {
            let sid = self.index.sets[self.j];
            let set = self.index.interner.get(sid);
            while self.k < set.len() {
                let w = set[self.k];
                self.k += 1;
                // Skip principals already yielded from an earlier
                // overlapping interval (ranges rarely span more than one,
                // so this loop body almost never runs).
                let dup = (self.lo..self.j).any(|jj| {
                    let sj = self.index.sets[jj];
                    sj == sid || self.index.interner.get(sj).binary_search(&w).is_ok()
                });
                if !dup {
                    return Some(w);
                }
            }
            self.j += 1;
            self.k = 0;
        }
        None
    }
}

// --------------------------------------------------------------- baseline

/// The paper's writer lookup (§5): one WRITE table per principal, every
/// table probed on every query. Superseded on the indirect-call slow
/// path by [`WriterIndex`]; kept as the measured baseline for
/// `lxfi-bench`'s `writer_index` benches and as a property-test oracle,
/// mirroring the `LinearWriteTable` treatment of the WRITE-table
/// refactor.
#[derive(Debug, Default)]
pub struct LinearWriterIndex {
    tables: Vec<WriteTable>,
}

impl LinearWriterIndex {
    /// Creates an empty baseline index.
    pub fn new() -> Self {
        Self::default()
    }

    fn table_mut(&mut self, p: PrincipalId) -> &mut WriteTable {
        let i = p.0 as usize;
        if i >= self.tables.len() {
            self.tables.resize_with(i + 1, WriteTable::new);
        }
        &mut self.tables[i]
    }

    /// Grants `[addr, addr+size)` to `p`.
    pub fn grant(&mut self, p: PrincipalId, addr: Word, size: u64) {
        self.table_mut(p).grant(addr, size);
    }

    /// Revokes the exact grant `(addr, size)` from `p`.
    pub fn revoke(&mut self, p: PrincipalId, addr: Word, size: u64) -> bool {
        self.table_mut(p).revoke(addr, size)
    }

    /// Revokes every grant of `p` intersecting `[addr, addr+size)`.
    pub fn revoke_overlapping(&mut self, p: PrincipalId, addr: Word, size: u64) -> usize {
        self.table_mut(p).revoke_overlapping(addr, size)
    }

    /// The global walk: every principal's table probed for overlap with
    /// `[addr, addr+len)` — linear in principals, allocating per call.
    pub fn writers_of(&self, addr: Word, len: u64) -> Vec<PrincipalId> {
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, t)| t.overlaps(addr, len))
            .map(|(i, _)| PrincipalId(i as u32))
            .collect()
    }

    /// Number of principal slots (diagnostics).
    pub fn principal_count(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: PrincipalId = PrincipalId(0);
    const P1: PrincipalId = PrincipalId(1);
    const P2: PrincipalId = PrincipalId(2);

    fn writers(ix: &WriterIndex, addr: Word, len: u64) -> Vec<PrincipalId> {
        ix.writers_over(addr, len).collect()
    }

    #[test]
    fn single_grant_single_writer() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 64);
        ix.check_invariants();
        assert_eq!(writers(&ix, 0x1000, 8), vec![P0]);
        assert_eq!(writers(&ix, 0x103f, 8), vec![P0], "tail byte overlaps");
        assert!(writers(&ix, 0x1040, 8).is_empty());
        assert!(
            writers(&ix, 0xff8, 8).is_empty(),
            "exclusive end: [0xff8, 0x1000) misses the grant"
        );
    }

    #[test]
    fn overlapping_grants_union_and_split() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x100);
        ix.add(P1, 0x1080, 0x100);
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 3, "split at 0x1080 and 0x1100");
        assert_eq!(writers(&ix, 0x1000, 8), vec![P0]);
        assert_eq!(writers(&ix, 0x1080, 8), vec![P0, P1]);
        assert_eq!(writers(&ix, 0x1100, 8), vec![P1]);
        // A probe spanning the split point still yields each writer once.
        assert_eq!(writers(&ix, 0x107c, 8), vec![P0, P1]);
    }

    #[test]
    fn remove_merges_back() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x100);
        ix.add(P1, 0x1080, 0x10);
        assert_eq!(ix.interval_count(), 3);
        ix.remove(P1, 0x1080, 0x10);
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 1, "splits coalesce after removal");
        assert_eq!(writers(&ix, 0x1080, 8), vec![P0]);
    }

    #[test]
    fn remove_creates_gap() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x30);
        ix.remove(P0, 0x1010, 0x10);
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 2);
        assert_eq!(writers(&ix, 0x1000, 8), vec![P0]);
        assert!(writers(&ix, 0x1010, 8).is_empty());
        assert_eq!(writers(&ix, 0x1020, 8), vec![P0]);
        // A probe across the gap still finds P0 exactly once.
        assert_eq!(writers(&ix, 0x1008, 0x20), vec![P0]);
    }

    #[test]
    fn idempotent_add_does_not_fragment() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x100);
        ix.add(P0, 0x1040, 0x10); // interior re-grant, same writer
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 1, "equal-set splits re-coalesce");
    }

    #[test]
    fn adjacent_same_set_coalesces() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x40);
        ix.add(P0, 0x1040, 0x40);
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 1);
        assert_eq!(writers(&ix, 0x1038, 16), vec![P0]);
    }

    #[test]
    fn three_writers_dedup_across_intervals() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x100);
        ix.add(P1, 0x1000, 0x80);
        ix.add(P2, 0x1040, 0x100);
        ix.check_invariants();
        let all = writers(&ix, 0x1000, 0x200);
        assert_eq!(all, vec![P0, P1, P2]);
        assert_eq!(writers(&ix, 0x1060, 8), vec![P0, P1, P2]);
        assert_eq!(writers(&ix, 0x1090, 8), vec![P0, P2]);
    }

    #[test]
    fn near_max_saturates() {
        let mut ix = WriterIndex::new();
        ix.add(P0, u64::MAX - 8, 16); // clamps to [MAX-8, MAX)
        ix.check_invariants();
        assert_eq!(writers(&ix, u64::MAX - 4, 8), vec![P0]);
        assert!(writers(&ix, u64::MAX, 8).is_empty(), "empty clamped probe");
        ix.add(P1, u64::MAX, 8); // clamps to nothing
        assert_eq!(ix.interval_count(), 1);
        ix.remove(P0, u64::MAX - 8, 16);
        assert_eq!(ix.interval_count(), 0);
    }

    #[test]
    fn zero_len_probe_is_empty() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 64);
        assert!(writers(&ix, 0x1010, 0).is_empty());
        assert!(!ix.overlaps(0x1010, 0));
    }

    #[test]
    fn set_interning_shares_ids() {
        let mut ix = WriterIndex::new();
        for i in 0..8u64 {
            ix.add(P0, 0x1000 + i * 0x100, 0x40);
            ix.add(P1, 0x1000 + i * 0x100, 0x40);
        }
        ix.check_invariants();
        // 8 disjoint {P0,P1} regions but only 4 sets ever interned:
        // {}, {P0}, {P0,P1} — plus nothing else.
        assert_eq!(ix.interval_count(), 8);
        assert_eq!(ix.set_count(), 3);
    }

    #[test]
    fn linear_baseline_agrees() {
        let mut ix = WriterIndex::new();
        let mut lin = LinearWriterIndex::new();
        let ops: &[(PrincipalId, Word, u64)] = &[
            (P0, 0x1000, 0x100),
            (P1, 0x1080, 0x100),
            (P2, 0x10f8, 0x10),
            (P0, 0x3000, 0x40),
        ];
        for &(p, a, s) in ops {
            ix.add(p, a, s);
            lin.grant(p, a, s);
        }
        for probe in [0x1000u64, 0x1080, 0x10f8, 0x1100, 0x2000, 0x3000] {
            let mut got = writers(&ix, probe, 8);
            got.sort();
            assert_eq!(got, lin.writers_of(probe, 8), "probe {probe:#x}");
        }
    }
}
