//! Reverse writer index (§5 scaling): address range → writer principals.
//!
//! The indirect-call slow path asks "which principals hold WRITE coverage
//! of this function-pointer slot?". The paper answers by walking the
//! global principal list — linear in the number of principals, and the
//! list grows with every module instance. This module inverts the
//! question: a sorted map of **disjoint address intervals**, each carrying
//! an **interned set** of the principals granted WRITE over it, is
//! maintained incrementally on every WRITE grant and revocation, so the
//! lookup is a binary search plus a walk of the (small) writer set —
//! O(log intervals + |writers|) instead of O(principals).
//!
//! # Sharding
//!
//! The interval map is **sharded by address region**: the caller hands
//! [`WriterIndex::with_boundaries`] a sorted list of split points
//! (module windows, slab zones — see the simulated kernel's
//! `layout::shard_boundaries`), and every interval lives in the shard
//! its addresses fall in. Queries resolve the shard with one small
//! binary search over the boundary list (effectively O(1) for the ≤ a
//! few dozen regions a kernel layout defines) before the O(log
//! intervals-in-shard) window search, and — the actual point — the Vec
//! splice a grant or revoke performs moves only the *shard's* tail, not
//! the whole system's interval population. The shard is also the
//! natural unit of concurrent mutation for a future multi-threaded
//! kernel. A default-constructed index has a single shard covering the
//! whole address space (the pre-sharding behavior).
//!
//! Intervals never span a shard boundary: a grant crossing one is split
//! at the boundary, so two touching same-set intervals can exist across
//! a boundary (they coalesce freely *within* a shard).
//!
//! # Writer-set interning and GC
//!
//! Writer sets are interned like the runtime's REF-type names: a sorted,
//! deduplicated `Vec<PrincipalId>` maps to a dense [`WriterSetId`], so
//! the many intervals produced by overlapping grants from the same
//! principals share one set allocation, and set identity is a `u32`
//! compare (which is also what lets adjacent intervals coalesce).
//! Interned sets are **refcounted by the interval entries referencing
//! them** (across all shards): when the last referencing interval is
//! spliced away, the set is freed and its slot recycled, so a
//! long-running grant/revoke churn interns new combinations forever
//! without growing memory. [`set_count`](WriterIndex::set_count) gauges
//! live sets; [`sets_ever_interned`](WriterIndex::sets_ever_interned)
//! counts allocations (including slot reuses) — `ever` growing while
//! `live` stays flat is the GC working.
//!
//! The paper's traversal survives as [`LinearWriterIndex`] — per-principal
//! [`WriteTable`]s probed one by one — mirroring the `LinearWriteTable`
//! treatment of PR 1: the old structure stays in-tree as the measured
//! baseline for `lxfi-bench` and as a property-test oracle.
//!
//! # Semantics
//!
//! A principal is a *writer of `[addr, addr+len)`* when one of its grants
//! **overlaps any byte** of the range. (The pre-index slow path required
//! a single grant to *cover* the whole slot; overlap is strictly more
//! conservative — a principal that can corrupt even one byte of a
//! function pointer is a writer — and is what both the index and the
//! linear baseline implement.)
//!
//! # Overflow discipline
//!
//! Identical to [`WriteTable`]: grant ends saturate at `Word::MAX`
//! (exclusive), zero-length ranges grant/match nothing, and query ends
//! saturate rather than wrap.

use std::collections::HashMap;

use lxfi_machine::Word;

use crate::caps::WriteTable;
use crate::principal::PrincipalId;

/// Interned id of a sorted, deduplicated set of writer principals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WriterSetId(pub u32);

/// The interned empty set (id 0 by construction; pinned, never freed).
pub const EMPTY_WRITERS: WriterSetId = WriterSetId(0);

/// Interns writer sets: identical sets share one id, so interval
/// entries are a `u32` and set equality is an integer compare. Live
/// sets are refcounted by the interval entries referencing them;
/// slots whose refcount drops to zero are recycled.
#[derive(Debug)]
struct SetInterner {
    sets: Vec<Vec<PrincipalId>>,
    /// Number of interval entries (across all shards) holding each id.
    refs: Vec<u32>,
    ids: HashMap<Vec<PrincipalId>, WriterSetId>,
    /// Recycled slots (freed sets) available for reuse.
    free: Vec<u32>,
    /// Monotonic count of slot allocations (including reuses).
    ever: u64,
}

impl SetInterner {
    fn new() -> Self {
        let mut it = SetInterner {
            sets: Vec::new(),
            refs: Vec::new(),
            ids: HashMap::new(),
            free: Vec::new(),
            ever: 0,
        };
        it.intern(Vec::new()); // id 0 = the empty set
        it
    }

    /// Interns a sorted, deduplicated principal set. A newly allocated
    /// slot starts at refcount 0; the caller must [`acquire`] it when an
    /// interval entry takes the id (splice does this).
    ///
    /// [`acquire`]: SetInterner::acquire
    fn intern(&mut self, set: Vec<PrincipalId>) -> WriterSetId {
        debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "sorted + dedup'd");
        if let Some(&id) = self.ids.get(&set) {
            return id;
        }
        self.ever += 1;
        let id = if let Some(slot) = self.free.pop() {
            debug_assert_eq!(self.refs[slot as usize], 0, "recycled slot is dead");
            self.sets[slot as usize] = set.clone();
            WriterSetId(slot)
        } else {
            self.sets.push(set.clone());
            self.refs.push(0);
            WriterSetId((self.sets.len() - 1) as u32)
        };
        self.ids.insert(set, id);
        id
    }

    fn get(&self, id: WriterSetId) -> &[PrincipalId] {
        &self.sets[id.0 as usize]
    }

    /// One more interval entry references `id`.
    fn acquire(&mut self, id: WriterSetId) {
        if id != EMPTY_WRITERS {
            self.refs[id.0 as usize] += 1;
        }
    }

    /// One interval entry dropped `id`; frees the set when unreferenced.
    fn release(&mut self, id: WriterSetId) {
        if id == EMPTY_WRITERS {
            return;
        }
        let i = id.0 as usize;
        self.refs[i] -= 1;
        if self.refs[i] == 0 {
            let set = std::mem::take(&mut self.sets[i]);
            self.ids.remove(&set);
            self.free.push(id.0);
        }
    }

    /// The set `sid ∪ {p}`.
    fn with(&mut self, sid: WriterSetId, p: PrincipalId) -> WriterSetId {
        let cur = self.get(sid);
        match cur.binary_search(&p) {
            Ok(_) => sid,
            Err(pos) => {
                let mut v = cur.to_vec();
                v.insert(pos, p);
                self.intern(v)
            }
        }
    }

    /// The set `sid ∖ {p}`.
    fn without(&mut self, sid: WriterSetId, p: PrincipalId) -> WriterSetId {
        let cur = self.get(sid);
        match cur.binary_search(&p) {
            Err(_) => sid,
            Ok(pos) => {
                if cur.len() == 1 {
                    return EMPTY_WRITERS;
                }
                let mut v = cur.to_vec();
                v.remove(pos);
                self.intern(v)
            }
        }
    }

    fn singleton(&mut self, p: PrincipalId) -> WriterSetId {
        self.intern(vec![p])
    }

    /// Live distinct sets (including the pinned empty set).
    fn live(&self) -> usize {
        self.ids.len()
    }
}

/// Clamps a range so its exclusive end saturates at `Word::MAX`
/// (the same discipline as `WriteTable`).
#[inline]
fn clamp_size(addr: Word, size: u64) -> u64 {
    size.min(Word::MAX - addr)
}

/// One address-region shard: disjoint, sorted `[start, end)` intervals,
/// each mapped to a non-empty interned writer set. Touching intervals
/// with the same set are coalesced on every mutation.
#[derive(Debug, Default)]
struct Shard {
    starts: Vec<Word>,
    /// Exclusive ends, parallel to `starts`. Disjointness makes this
    /// vector sorted too, which the window search relies on.
    ends: Vec<Word>,
    sets: Vec<WriterSetId>,
}

impl Shard {
    /// Indices of the entries overlapping `[a, e)`: `lo..hi`.
    #[inline]
    fn window(&self, a: Word, e: Word) -> (usize, usize) {
        let lo = self.ends.partition_point(|&x| x <= a);
        let hi = self.starts.partition_point(|&s| s < e);
        (lo, hi.max(lo))
    }

    /// Replaces entries `lo..hi` with `repl`, coalescing touching
    /// equal-set segments and maintaining the interner's refcounts
    /// (new entries acquired before old ones release, so a set that
    /// survives the splice is never transiently freed).
    fn splice(
        &mut self,
        interner: &mut SetInterner,
        lo: usize,
        hi: usize,
        repl: Vec<(Word, Word, WriterSetId)>,
    ) {
        let mut merged: Vec<(Word, Word, WriterSetId)> = Vec::with_capacity(repl.len());
        for seg in repl {
            debug_assert!(seg.0 < seg.1, "non-empty segment");
            if let Some(last) = merged.last_mut() {
                if last.1 == seg.0 && last.2 == seg.2 {
                    last.1 = seg.1;
                    continue;
                }
            }
            merged.push(seg);
        }
        for seg in &merged {
            interner.acquire(seg.2);
        }
        for j in lo..hi {
            interner.release(self.sets[j]);
        }
        self.starts.splice(lo..hi, merged.iter().map(|s| s.0));
        self.ends.splice(lo..hi, merged.iter().map(|s| s.1));
        self.sets.splice(lo..hi, merged.iter().map(|s| s.2));
    }

    /// Unions `p` into `[addr, e)` within this shard (the caller has
    /// already clipped the range to the shard's bounds). Idempotent.
    fn add(&mut self, interner: &mut SetInterner, p: PrincipalId, addr: Word, e: Word) {
        let (wlo, whi) = self.window(addr, e);
        let mut lo = wlo;
        let mut hi = whi;
        let mut out = Vec::new();
        // Pull a touching left neighbor into the splice so a coalescible
        // boundary merges instead of fragmenting.
        if wlo > 0 && self.ends[wlo - 1] == addr {
            lo = wlo - 1;
            out.push((self.starts[lo], self.ends[lo], self.sets[lo]));
        }
        let mut cursor = addr;
        for j in wlo..whi {
            let (s, en, sid) = (self.starts[j], self.ends[j], self.sets[j]);
            let ov_lo = s.max(addr);
            let ov_hi = en.min(e);
            if s < ov_lo {
                out.push((s, ov_lo, sid));
            }
            if cursor < ov_lo {
                let single = interner.singleton(p);
                out.push((cursor, ov_lo, single));
            }
            let merged = interner.with(sid, p);
            out.push((ov_lo, ov_hi, merged));
            if en > ov_hi {
                out.push((ov_hi, en, sid));
            }
            cursor = ov_hi;
        }
        if cursor < e {
            let single = interner.singleton(p);
            out.push((cursor, e, single));
        }
        if whi < self.starts.len() && self.starts[whi] == e {
            out.push((self.starts[whi], self.ends[whi], self.sets[whi]));
            hi = whi + 1;
        }
        self.splice(interner, lo, hi, out);
    }

    /// Removes `p` from the writer sets of `[addr, e)` within this shard
    /// (pre-clipped); intervals whose set empties are dropped. A no-op
    /// where `p` is not a writer.
    fn remove(&mut self, interner: &mut SetInterner, p: PrincipalId, addr: Word, e: Word) {
        let (wlo, whi) = self.window(addr, e);
        let mut lo = wlo;
        let mut hi = whi;
        let mut out = Vec::new();
        if wlo > 0 && self.ends[wlo - 1] == addr {
            lo = wlo - 1;
            out.push((self.starts[lo], self.ends[lo], self.sets[lo]));
        }
        for j in wlo..whi {
            let (s, en, sid) = (self.starts[j], self.ends[j], self.sets[j]);
            let ov_lo = s.max(addr);
            let ov_hi = en.min(e);
            if s < ov_lo {
                out.push((s, ov_lo, sid));
            }
            let shrunk = interner.without(sid, p);
            if shrunk != EMPTY_WRITERS {
                out.push((ov_lo, ov_hi, shrunk));
            }
            if en > ov_hi {
                out.push((ov_hi, en, sid));
            }
        }
        if whi < self.starts.len() && self.starts[whi] == e {
            out.push((self.starts[whi], self.ends[whi], self.sets[whi]));
            hi = whi + 1;
        }
        self.splice(interner, lo, hi, out);
    }
}

/// The reverse writer index: address-region shards of disjoint sorted
/// intervals over one refcounted set interner. See the module docs for
/// the sharding and GC disciplines.
#[derive(Debug)]
pub struct WriterIndex {
    /// Sorted, distinct, non-zero shard split points; shard `i` covers
    /// `[boundaries[i-1], boundaries[i])` (first from 0, last to MAX).
    boundaries: Vec<Word>,
    shards: Vec<Shard>,
    interner: SetInterner,
}

impl Default for WriterIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl WriterIndex {
    /// Creates an empty single-shard index (whole address space).
    pub fn new() -> Self {
        Self::with_boundaries(Vec::new())
    }

    /// Creates an empty index sharded at the given split points
    /// (deduplicated, sorted; zeros dropped). `n` boundaries make
    /// `n + 1` shards.
    pub fn with_boundaries(mut boundaries: Vec<Word>) -> Self {
        boundaries.retain(|&b| b > 0);
        boundaries.sort_unstable();
        boundaries.dedup();
        let shards = (0..=boundaries.len()).map(|_| Shard::default()).collect();
        WriterIndex {
            boundaries,
            shards,
            interner: SetInterner::new(),
        }
    }

    /// The configured shard split points.
    pub fn boundaries(&self) -> &[Word] {
        &self.boundaries
    }

    /// Number of shards (`boundaries + 1`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding `addr`.
    #[inline]
    fn shard_of(&self, addr: Word) -> usize {
        self.boundaries.partition_point(|&b| b <= addr)
    }

    /// Inclusive lower bound of shard `s`.
    #[inline]
    fn shard_lo(&self, s: usize) -> Word {
        if s == 0 {
            0
        } else {
            self.boundaries[s - 1]
        }
    }

    /// Exclusive upper bound of shard `s` (the top shard runs to MAX,
    /// which no saturated interval end can exceed).
    #[inline]
    fn shard_hi(&self, s: usize) -> Word {
        self.boundaries.get(s).copied().unwrap_or(Word::MAX)
    }

    /// Records that `p` was granted WRITE over `[addr, addr+size)`:
    /// existing intervals split at the grant's boundaries and union `p`
    /// in; uncovered gaps become `{p}` intervals. Idempotent. A grant
    /// crossing a shard boundary is split there.
    pub fn add(&mut self, p: PrincipalId, addr: Word, size: u64) {
        let size = clamp_size(addr, size);
        if size == 0 {
            return;
        }
        let e = addr + size;
        let (first, last) = (self.shard_of(addr), self.shard_of(e - 1));
        for s in first..=last {
            let lo = addr.max(self.shard_lo(s));
            let hi = e.min(self.shard_hi(s));
            debug_assert!(lo < hi, "clipped segment non-empty");
            self.shards[s].add(&mut self.interner, p, lo, hi);
        }
    }

    /// Removes `p` from the writer sets of `[addr, addr+size)`, splitting
    /// intervals at the boundaries; intervals whose set empties are
    /// dropped. A no-op where `p` is not a writer.
    ///
    /// Callers revoking one grant must afterwards [`add`](Self::add) back
    /// any of `p`'s *other* grants still overlapping the range — the
    /// index stores merged coverage, not individual grants.
    pub fn remove(&mut self, p: PrincipalId, addr: Word, size: u64) {
        let size = clamp_size(addr, size);
        if size == 0 {
            return;
        }
        let e = addr + size;
        let (first, last) = (self.shard_of(addr), self.shard_of(e - 1));
        for s in first..=last {
            let lo = addr.max(self.shard_lo(s));
            let hi = e.min(self.shard_hi(s));
            self.shards[s].remove(&mut self.interner, p, lo, hi);
        }
    }

    /// True if any writer interval overlaps `[addr, addr+len)` (query end
    /// saturates at `Word::MAX`).
    pub fn overlaps(&self, addr: Word, len: u64) -> bool {
        if len == 0 {
            return false;
        }
        let e = addr.saturating_add(len);
        let (first, last) = (self.shard_of(addr), self.shard_of(e - 1));
        (first..=last).any(|s| {
            let (lo, hi) = self.shards[s].window(addr, e);
            lo < hi
        })
    }

    /// Deduplicated writer principals of `[addr, addr+len)`, in interval
    /// order across shards. Allocation-free: the iterator yields straight
    /// out of the interned sets (the common case is a single covering
    /// interval in a single shard).
    pub fn writers_over(&self, addr: Word, len: u64) -> WritersOver<'_> {
        if len == 0 {
            return WritersOver {
                index: self,
                addr: 0,
                end: 0,
                s_first: 1,
                s_last: 0,
                s: 1,
                win: (0, 0),
                j: 0,
                k: 0,
            };
        }
        let e = addr.saturating_add(len);
        let s_first = self.shard_of(addr);
        let s_last = self.shard_of(e - 1);
        let win = self.shards[s_first].window(addr, e);
        WritersOver {
            index: self,
            addr,
            end: e,
            s_first,
            s_last,
            s: s_first,
            win,
            j: win.0,
            k: 0,
        }
    }

    /// The interned set for an id (diagnostics / bench assertions).
    pub fn set(&self, id: WriterSetId) -> &[PrincipalId] {
        self.interner.get(id)
    }

    /// Number of live intervals across all shards (diagnostics). A range
    /// spanning shard boundaries counts one interval per shard.
    pub fn interval_count(&self) -> usize {
        self.shards.iter().map(|s| s.starts.len()).sum()
    }

    /// Number of distinct **live** interned writer sets, including the
    /// pinned empty set (diagnostics; unreferenced sets are freed and
    /// their slots recycled).
    pub fn set_count(&self) -> usize {
        self.interner.live()
    }

    /// Writer-set slot allocations ever performed, including reuses of
    /// recycled slots (monotonic; pairs with [`set_count`](Self::set_count)
    /// as the live-vs-interned GC gauge).
    pub fn sets_ever_interned(&self) -> u64 {
        self.interner.ever
    }

    /// Folds a predecessor index's allocation count into this one's so
    /// `sets_ever_interned` stays monotonic across a rebuild
    /// (`Runtime::set_shard_boundaries` replaces the whole index).
    pub(crate) fn carry_allocation_count(&mut self, prior: u64) {
        self.interner.ever += prior;
    }

    /// Interner slot capacity: high-water mark of simultaneously live
    /// sets (freed slots are recycled, so this stays bounded under
    /// churn).
    pub fn set_slot_capacity(&self) -> usize {
        self.interner.sets.len()
    }

    /// Currently recycled (free) interner slots (diagnostics).
    pub fn free_set_slots(&self) -> usize {
        self.interner.free.len()
    }

    /// Iterates `(start, end, writers)` over all intervals in address
    /// order (diagnostics).
    pub fn intervals(&self) -> impl Iterator<Item = (Word, Word, &[PrincipalId])> + '_ {
        let interner = &self.interner;
        self.shards.iter().flat_map(move |sh| {
            (0..sh.starts.len()).map(move |i| (sh.starts[i], sh.ends[i], interner.get(sh.sets[i])))
        })
    }

    /// Panics unless the structural invariants hold: sorted disjoint
    /// non-empty intervals inside their shard's bounds, non-empty sorted
    /// writer sets, no coalescible (touching, equal-set) neighbors
    /// within a shard, and interner refcounts exactly matching the
    /// interval entries referencing each set. Test/proptest hook.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut refs = vec![0u32; self.interner.sets.len()];
        for (si, sh) in self.shards.iter().enumerate() {
            assert_eq!(sh.starts.len(), sh.ends.len());
            assert_eq!(sh.starts.len(), sh.sets.len());
            let (slo, shi) = (self.shard_lo(si), self.shard_hi(si));
            for i in 0..sh.starts.len() {
                assert!(
                    sh.starts[i] < sh.ends[i],
                    "shard {si} interval {i} non-empty"
                );
                assert!(
                    sh.starts[i] >= slo && sh.ends[i] <= shi,
                    "shard {si} interval {i} inside shard bounds"
                );
                assert_ne!(sh.sets[i], EMPTY_WRITERS, "interval {i} has writers");
                let set = self.interner.get(sh.sets[i]);
                assert!(!set.is_empty());
                assert!(set.windows(2).all(|w| w[0] < w[1]), "set sorted");
                refs[sh.sets[i].0 as usize] += 1;
                if i + 1 < sh.starts.len() {
                    assert!(sh.ends[i] <= sh.starts[i + 1], "disjoint + sorted");
                    assert!(
                        !(sh.ends[i] == sh.starts[i + 1] && sh.sets[i] == sh.sets[i + 1]),
                        "touching equal-set intervals must coalesce"
                    );
                }
            }
        }
        for (i, &rc) in refs.iter().enumerate() {
            assert_eq!(
                self.interner.refs[i], rc,
                "set {i} refcount matches its interval references"
            );
            if rc > 0 {
                let set = &self.interner.sets[i];
                assert_eq!(
                    self.interner.ids.get(set),
                    Some(&WriterSetId(i as u32)),
                    "live set {i} resolvable through the id map"
                );
            }
        }
        for &slot in &self.interner.free {
            assert_eq!(self.interner.refs[slot as usize], 0, "free slot is dead");
            assert!(
                self.interner.sets[slot as usize].is_empty(),
                "free slot taken"
            );
        }
        assert_eq!(
            self.interner.live() + self.interner.free.len(),
            self.interner.sets.len(),
            "every slot is live or free"
        );
    }
}

/// Iterator over the deduplicated writers of a range; see
/// [`WriterIndex::writers_over`].
pub struct WritersOver<'a> {
    index: &'a WriterIndex,
    addr: Word,
    end: Word,
    s_first: usize,
    s_last: usize,
    s: usize,
    win: (usize, usize),
    j: usize,
    k: usize,
}

impl WritersOver<'_> {
    /// True if `w` was already yielded from an earlier overlapping
    /// interval (possibly in an earlier shard). Ranges rarely span more
    /// than one interval, so this almost never iterates.
    fn already_yielded(&self, w: PrincipalId, sid: WriterSetId) -> bool {
        for ss in self.s_first..=self.s {
            let sh = &self.index.shards[ss];
            let (wlo, whi) = if ss == self.s {
                (self.win.0, self.j)
            } else {
                sh.window(self.addr, self.end)
            };
            for jj in wlo..whi {
                let sj = sh.sets[jj];
                if sj == sid || self.index.interner.get(sj).binary_search(&w).is_ok() {
                    return true;
                }
            }
        }
        false
    }
}

impl Iterator for WritersOver<'_> {
    type Item = PrincipalId;

    fn next(&mut self) -> Option<PrincipalId> {
        loop {
            if self.j >= self.win.1 {
                if self.s >= self.s_last {
                    return None;
                }
                self.s += 1;
                self.win = self.index.shards[self.s].window(self.addr, self.end);
                self.j = self.win.0;
                self.k = 0;
                continue;
            }
            let sid = self.index.shards[self.s].sets[self.j];
            let set = self.index.interner.get(sid);
            while self.k < set.len() {
                let w = set[self.k];
                self.k += 1;
                if !self.already_yielded(w, sid) {
                    return Some(w);
                }
            }
            self.j += 1;
            self.k = 0;
        }
    }
}

// --------------------------------------------------------------- baseline

/// The paper's writer lookup (§5): one WRITE table per principal, every
/// table probed on every query. Superseded on the indirect-call slow
/// path by [`WriterIndex`]; kept as the measured baseline for
/// `lxfi-bench`'s `writer_index` benches and as a property-test oracle,
/// mirroring the `LinearWriteTable` treatment of the WRITE-table
/// refactor.
#[derive(Debug, Default)]
pub struct LinearWriterIndex {
    tables: Vec<WriteTable>,
}

impl LinearWriterIndex {
    /// Creates an empty baseline index.
    pub fn new() -> Self {
        Self::default()
    }

    fn table_mut(&mut self, p: PrincipalId) -> &mut WriteTable {
        let i = p.0 as usize;
        if i >= self.tables.len() {
            self.tables.resize_with(i + 1, WriteTable::new);
        }
        &mut self.tables[i]
    }

    /// Grants `[addr, addr+size)` to `p`.
    pub fn grant(&mut self, p: PrincipalId, addr: Word, size: u64) {
        self.table_mut(p).grant(addr, size);
    }

    /// Revokes the exact grant `(addr, size)` from `p`.
    pub fn revoke(&mut self, p: PrincipalId, addr: Word, size: u64) -> bool {
        self.table_mut(p).revoke(addr, size)
    }

    /// Revokes every grant of `p` intersecting `[addr, addr+size)`.
    pub fn revoke_overlapping(&mut self, p: PrincipalId, addr: Word, size: u64) -> usize {
        self.table_mut(p).revoke_overlapping(addr, size)
    }

    /// The global walk: every principal's table probed for overlap with
    /// `[addr, addr+len)` — linear in principals, allocating per call.
    pub fn writers_of(&self, addr: Word, len: u64) -> Vec<PrincipalId> {
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, t)| t.overlaps(addr, len))
            .map(|(i, _)| PrincipalId(i as u32))
            .collect()
    }

    /// Number of principal slots (diagnostics).
    pub fn principal_count(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: PrincipalId = PrincipalId(0);
    const P1: PrincipalId = PrincipalId(1);
    const P2: PrincipalId = PrincipalId(2);

    fn writers(ix: &WriterIndex, addr: Word, len: u64) -> Vec<PrincipalId> {
        ix.writers_over(addr, len).collect()
    }

    #[test]
    fn single_grant_single_writer() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 64);
        ix.check_invariants();
        assert_eq!(writers(&ix, 0x1000, 8), vec![P0]);
        assert_eq!(writers(&ix, 0x103f, 8), vec![P0], "tail byte overlaps");
        assert!(writers(&ix, 0x1040, 8).is_empty());
        assert!(
            writers(&ix, 0xff8, 8).is_empty(),
            "exclusive end: [0xff8, 0x1000) misses the grant"
        );
    }

    #[test]
    fn overlapping_grants_union_and_split() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x100);
        ix.add(P1, 0x1080, 0x100);
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 3, "split at 0x1080 and 0x1100");
        assert_eq!(writers(&ix, 0x1000, 8), vec![P0]);
        assert_eq!(writers(&ix, 0x1080, 8), vec![P0, P1]);
        assert_eq!(writers(&ix, 0x1100, 8), vec![P1]);
        // A probe spanning the split point still yields each writer once.
        assert_eq!(writers(&ix, 0x107c, 8), vec![P0, P1]);
    }

    #[test]
    fn remove_merges_back() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x100);
        ix.add(P1, 0x1080, 0x10);
        assert_eq!(ix.interval_count(), 3);
        ix.remove(P1, 0x1080, 0x10);
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 1, "splits coalesce after removal");
        assert_eq!(writers(&ix, 0x1080, 8), vec![P0]);
    }

    #[test]
    fn remove_creates_gap() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x30);
        ix.remove(P0, 0x1010, 0x10);
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 2);
        assert_eq!(writers(&ix, 0x1000, 8), vec![P0]);
        assert!(writers(&ix, 0x1010, 8).is_empty());
        assert_eq!(writers(&ix, 0x1020, 8), vec![P0]);
        // A probe across the gap still finds P0 exactly once.
        assert_eq!(writers(&ix, 0x1008, 0x20), vec![P0]);
    }

    #[test]
    fn idempotent_add_does_not_fragment() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x100);
        ix.add(P0, 0x1040, 0x10); // interior re-grant, same writer
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 1, "equal-set splits re-coalesce");
    }

    #[test]
    fn adjacent_same_set_coalesces() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x40);
        ix.add(P0, 0x1040, 0x40);
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 1);
        assert_eq!(writers(&ix, 0x1038, 16), vec![P0]);
    }

    #[test]
    fn three_writers_dedup_across_intervals() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x100);
        ix.add(P1, 0x1000, 0x80);
        ix.add(P2, 0x1040, 0x100);
        ix.check_invariants();
        let all = writers(&ix, 0x1000, 0x200);
        assert_eq!(all, vec![P0, P1, P2]);
        assert_eq!(writers(&ix, 0x1060, 8), vec![P0, P1, P2]);
        assert_eq!(writers(&ix, 0x1090, 8), vec![P0, P2]);
    }

    #[test]
    fn near_max_saturates() {
        let mut ix = WriterIndex::new();
        ix.add(P0, u64::MAX - 8, 16); // clamps to [MAX-8, MAX)
        ix.check_invariants();
        assert_eq!(writers(&ix, u64::MAX - 4, 8), vec![P0]);
        assert!(writers(&ix, u64::MAX, 8).is_empty(), "empty clamped probe");
        ix.add(P1, u64::MAX, 8); // clamps to nothing
        assert_eq!(ix.interval_count(), 1);
        ix.remove(P0, u64::MAX - 8, 16);
        assert_eq!(ix.interval_count(), 0);
    }

    #[test]
    fn zero_len_probe_is_empty() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 64);
        assert!(writers(&ix, 0x1010, 0).is_empty());
        assert!(!ix.overlaps(0x1010, 0));
    }

    #[test]
    fn set_interning_shares_ids_and_gcs_transients() {
        let mut ix = WriterIndex::new();
        for i in 0..8u64 {
            ix.add(P0, 0x1000 + i * 0x100, 0x40);
            ix.add(P1, 0x1000 + i * 0x100, 0x40);
        }
        ix.check_invariants();
        // 8 disjoint {P0,P1} regions share ONE live set besides the
        // pinned empty set; the transient {P0} singletons created before
        // each P1 add were freed when their last interval upgraded.
        assert_eq!(ix.interval_count(), 8);
        assert_eq!(ix.set_count(), 2, "live: {{}} and {{P0,P1}}");
        assert!(
            ix.sets_ever_interned() >= 3,
            "transient {{P0}} was interned"
        );
        assert!(
            ix.set_slot_capacity() <= 3,
            "freed slots recycled: capacity {}",
            ix.set_slot_capacity()
        );
    }

    #[test]
    fn removing_last_reference_frees_the_set() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x40);
        ix.add(P1, 0x1000, 0x40);
        assert_eq!(ix.set_count(), 2); // {}, {P0,P1}
        ix.remove(P0, 0x1000, 0x40);
        ix.check_invariants();
        assert_eq!(ix.set_count(), 2, "{{P0,P1}} freed, {{P1}} live");
        ix.remove(P1, 0x1000, 0x40);
        ix.check_invariants();
        assert_eq!(ix.set_count(), 1, "only the pinned empty set remains");
        assert_eq!(ix.interval_count(), 0);
        assert!(ix.free_set_slots() > 0, "slots await recycling");
    }

    // ------------------------------------------------------------ shards

    #[test]
    fn sharded_answers_match_unsharded() {
        let bounds = vec![0x1080, 0x1100, 0x2000];
        let mut sharded = WriterIndex::with_boundaries(bounds);
        let mut flat = WriterIndex::new();
        let ops: &[(PrincipalId, Word, u64)] = &[
            (P0, 0x1000, 0x100), // crosses 0x1080
            (P1, 0x1040, 0x200), // crosses 0x1080 and 0x1100
            (P2, 0x1ff0, 0x20),  // crosses 0x2000
            (P0, 0x3000, 0x40),  // inside the top shard
        ];
        for &(p, a, s) in ops {
            sharded.add(p, a, s);
            flat.add(p, a, s);
            sharded.check_invariants();
        }
        for probe in [
            0x0ff8u64, 0x1000, 0x1040, 0x107c, 0x1080, 0x10fc, 0x1100, 0x123c, 0x1ff0, 0x1ffc,
            0x2000, 0x2008, 0x3000,
        ] {
            assert_eq!(
                writers(&sharded, probe, 8),
                writers(&flat, probe, 8),
                "probe {probe:#x}"
            );
            assert_eq!(sharded.overlaps(probe, 8), flat.overlaps(probe, 8));
        }
        // A wide probe spanning every shard still dedups writers.
        let mut wide: Vec<_> = writers(&sharded, 0x1000, 0x2100);
        wide.sort();
        assert_eq!(wide, vec![P0, P1, P2]);
        // Removals across boundaries agree too.
        sharded.remove(P1, 0x1040, 0x200);
        flat.remove(P1, 0x1040, 0x200);
        sharded.check_invariants();
        for probe in [0x1040u64, 0x1080, 0x1100, 0x1200] {
            assert_eq!(
                writers(&sharded, probe, 8),
                writers(&flat, probe, 8),
                "post-remove probe {probe:#x}"
            );
        }
    }

    #[test]
    fn boundary_crossing_grant_splits_per_shard() {
        let mut ix = WriterIndex::with_boundaries(vec![0x1080]);
        assert_eq!(ix.shard_count(), 2);
        ix.add(P0, 0x1000, 0x100);
        ix.check_invariants();
        // One logical region, two per-shard intervals (no cross-shard
        // coalescing), one live non-empty set.
        assert_eq!(ix.interval_count(), 2);
        assert_eq!(ix.set_count(), 2);
        assert_eq!(writers(&ix, 0x1078, 16), vec![P0], "probe across boundary");
        ix.remove(P0, 0x1000, 0x100);
        assert_eq!(ix.interval_count(), 0);
    }

    #[test]
    fn boundaries_normalize() {
        let ix = WriterIndex::with_boundaries(vec![0x2000, 0, 0x1000, 0x2000]);
        assert_eq!(ix.boundaries(), &[0x1000, 0x2000]);
        assert_eq!(ix.shard_count(), 3);
    }

    #[test]
    fn near_max_sharded_saturates() {
        let mut ix = WriterIndex::with_boundaries(vec![u64::MAX - 0x100]);
        ix.add(P0, u64::MAX - 0x180, 0x1000); // clamps to [MAX-0x180, MAX)
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 2, "split at the boundary");
        assert_eq!(writers(&ix, u64::MAX - 0x110, 0x20), vec![P0]);
        assert_eq!(writers(&ix, u64::MAX - 8, 8), vec![P0]);
        ix.remove(P0, u64::MAX - 0x180, u64::MAX);
        assert_eq!(ix.interval_count(), 0);
        ix.check_invariants();
    }

    #[test]
    fn linear_baseline_agrees() {
        let mut ix = WriterIndex::new();
        let mut lin = LinearWriterIndex::new();
        let ops: &[(PrincipalId, Word, u64)] = &[
            (P0, 0x1000, 0x100),
            (P1, 0x1080, 0x100),
            (P2, 0x10f8, 0x10),
            (P0, 0x3000, 0x40),
        ];
        for &(p, a, s) in ops {
            ix.add(p, a, s);
            lin.grant(p, a, s);
        }
        for probe in [0x1000u64, 0x1080, 0x10f8, 0x1100, 0x2000, 0x3000] {
            let mut got = writers(&ix, probe, 8);
            got.sort();
            assert_eq!(got, lin.writers_of(probe, 8), "probe {probe:#x}");
        }
    }
}
