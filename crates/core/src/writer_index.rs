//! Reverse writer index (§5 scaling): address range → writer principals.
//!
//! The indirect-call slow path asks "which principals hold WRITE coverage
//! of this function-pointer slot?". The paper answers by walking the
//! global principal list — linear in the number of principals, and the
//! list grows with every module instance. This module inverts the
//! question: a sorted map of **disjoint address intervals**, each carrying
//! an **interned set** of the principals granted WRITE over it, is
//! maintained incrementally on every WRITE grant and revocation, so the
//! lookup is a binary search plus a walk of the (small) writer set —
//! O(log intervals + |writers|) instead of O(principals).
//!
//! # Sharding
//!
//! The interval map is **sharded by address region**: the caller hands
//! [`WriterIndex::with_boundaries`] a sorted list of split points
//! (module windows, slab zones — see the simulated kernel's
//! `layout::shard_boundaries`), and every interval lives in the shard
//! its addresses fall in. Queries resolve the shard with one small
//! binary search over the boundary list (effectively O(1) for the ≤ a
//! few dozen regions a kernel layout defines) before the O(log
//! intervals-in-shard) window search, and — the actual point — the Vec
//! splice a grant or revoke performs moves only the *shard's* tail, not
//! the whole system's interval population.
//!
//! Since the thread-safe runtime landed, the shard is also the unit of
//! **lock granularity**: the shared `RuntimeCore` wraps every shard
//! (its intervals plus its principal-presence map) in its own lock.
//! Mutations are **phase-split** ([`IndexShard::add_split`] /
//! [`IndexShard::remove_split`]): the shard lock is held for the whole
//! operation (which keeps a revocation's remove-and-reinstate atomic
//! per shard — see `Sharding::replace`), while the shared-interner
//! mutex is taken only for the id/refcount phase (interning the new
//! sets, moving refcounts, computing presence deltas); the interval
//! memmove then runs under the shard lock alone. Splices in different
//! shards therefore overlap except for their brief interner sections,
//! and the lock order is strictly shard → interner (the interner is a
//! leaf — nothing acquires a shard while holding it). A
//! default-constructed index has a single shard covering the whole
//! address space (the pre-sharding behavior).
//!
//! Intervals never span a shard boundary: a grant crossing one is split
//! at the boundary, so two touching same-set intervals can exist across
//! a boundary (they coalesce freely *within* a shard).
//!
//! # Writer-set interning, GC, and presence
//!
//! Writer sets are interned like the runtime's REF-type names: a sorted,
//! deduplicated `Vec<PrincipalId>` maps to a dense [`WriterSetId`], so
//! the many intervals produced by overlapping grants from the same
//! principals share one set allocation, and set identity is a `u32`
//! compare (which is also what lets adjacent intervals coalesce). The
//! interner is **shared across shards** (the concurrent core guards it
//! with its own mutex, held for the duration of a splice): sharing is
//! what keeps a set resident when its references repeat across shards,
//! so churn in one shard never re-allocates another's combinations. Interned sets are refcounted by the interval entries
//! referencing them (across all shards): when the last referencing
//! interval is spliced away, the set is freed and its slot recycled, so
//! a long-running grant/revoke churn interns new combinations forever
//! without growing memory. [`set_count`](WriterIndex::set_count) gauges
//! live sets; [`sets_ever_interned`](WriterIndex::sets_ever_interned)
//! counts allocations (including slot reuses) — `ever` growing while
//! `live` stays flat is the GC working.
//!
//! Each shard additionally maintains a **principal-presence map**: for
//! every principal, the number of the shard's intervals whose writer set
//! contains it. `kfree`-style sweeps (`revoke_write_overlapping_
//! everywhere`) use it to visit only the principals actually holding
//! grants in the freed region's shards instead of walking every
//! principal's table; debug builds assert the hint against the full
//! walk.
//!
//! The paper's traversal survives as [`LinearWriterIndex`] — per-principal
//! [`WriteTable`]s probed one by one — mirroring the `LinearWriteTable`
//! treatment of PR 1: the old structure stays in-tree as the measured
//! baseline for `lxfi-bench` and as a property-test oracle.
//!
//! # Semantics
//!
//! A principal is a *writer of `[addr, addr+len)`* when one of its grants
//! **overlaps any byte** of the range. (The pre-index slow path required
//! a single grant to *cover* the whole slot; overlap is strictly more
//! conservative — a principal that can corrupt even one byte of a
//! function pointer is a writer — and is what both the index and the
//! linear baseline implement.)
//!
//! # Overflow discipline
//!
//! Identical to [`WriteTable`]: grant ends saturate at `Word::MAX`
//! (exclusive), zero-length ranges grant/match nothing, and query ends
//! saturate rather than wrap.

use std::collections::HashMap;
use std::sync::Mutex as StdMutex;

use lxfi_machine::Word;

use crate::caps::WriteTable;
use crate::principal::PrincipalId;

/// The output of a splice's id/refcount phase: the coalesced replacement
/// segments (sets already acquired) plus the presence-map deltas, ready
/// to apply to the interval vectors without touching the interner.
struct SplicePlan {
    lo: usize,
    hi: usize,
    merged: Vec<(Word, Word, WriterSetId)>,
    inc: Vec<PrincipalId>,
    dec: Vec<PrincipalId>,
}

/// Interned id of a sorted, deduplicated set of writer principals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WriterSetId(pub u32);

/// The interned empty set (id 0 by construction; pinned, never freed).
pub const EMPTY_WRITERS: WriterSetId = WriterSetId(0);

/// Interns writer sets: identical sets share one id, so interval
/// entries are a `u32` and set equality is an integer compare. Live
/// sets are refcounted by the interval entries referencing them
/// (across all shards — sharing the interner is what lets a set whose
/// intervals span shards, or repeat across them, stay resident under
/// churn); slots whose refcount drops to zero are recycled.
#[derive(Debug)]
pub(crate) struct SetInterner {
    sets: Vec<Vec<PrincipalId>>,
    /// Number of interval entries (across all shards) holding each id.
    refs: Vec<u32>,
    ids: HashMap<Vec<PrincipalId>, WriterSetId>,
    /// Recycled slots (freed sets) available for reuse.
    free: Vec<u32>,
    /// Monotonic count of slot allocations (including reuses).
    ever: u64,
}

impl SetInterner {
    pub(crate) fn new() -> Self {
        let mut it = SetInterner {
            sets: Vec::new(),
            refs: Vec::new(),
            ids: HashMap::new(),
            free: Vec::new(),
            ever: 0,
        };
        it.intern(Vec::new()); // id 0 = the empty set
        it
    }

    /// Interns a sorted, deduplicated principal set. A newly allocated
    /// slot starts at refcount 0; the caller must [`acquire`] it when an
    /// interval entry takes the id (splice does this).
    ///
    /// [`acquire`]: SetInterner::acquire
    fn intern(&mut self, set: Vec<PrincipalId>) -> WriterSetId {
        debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "sorted + dedup'd");
        if let Some(&id) = self.ids.get(&set) {
            return id;
        }
        self.ever += 1;
        let id = if let Some(slot) = self.free.pop() {
            debug_assert_eq!(self.refs[slot as usize], 0, "recycled slot is dead");
            self.sets[slot as usize] = set.clone();
            WriterSetId(slot)
        } else {
            self.sets.push(set.clone());
            self.refs.push(0);
            WriterSetId((self.sets.len() - 1) as u32)
        };
        self.ids.insert(set, id);
        id
    }

    pub(crate) fn get(&self, id: WriterSetId) -> &[PrincipalId] {
        &self.sets[id.0 as usize]
    }

    /// One more interval entry references `id`.
    fn acquire(&mut self, id: WriterSetId) {
        if id != EMPTY_WRITERS {
            self.refs[id.0 as usize] += 1;
        }
    }

    /// One interval entry dropped `id`; frees the set when unreferenced.
    fn release(&mut self, id: WriterSetId) {
        if id == EMPTY_WRITERS {
            return;
        }
        let i = id.0 as usize;
        self.refs[i] -= 1;
        if self.refs[i] == 0 {
            let set = std::mem::take(&mut self.sets[i]);
            self.ids.remove(&set);
            self.free.push(id.0);
        }
    }

    /// The set `sid ∪ {p}`.
    fn with(&mut self, sid: WriterSetId, p: PrincipalId) -> WriterSetId {
        let cur = self.get(sid);
        match cur.binary_search(&p) {
            Ok(_) => sid,
            Err(pos) => {
                let mut v = cur.to_vec();
                v.insert(pos, p);
                self.intern(v)
            }
        }
    }

    /// The set `sid ∖ {p}`.
    fn without(&mut self, sid: WriterSetId, p: PrincipalId) -> WriterSetId {
        let cur = self.get(sid);
        match cur.binary_search(&p) {
            Err(_) => sid,
            Ok(pos) => {
                if cur.len() == 1 {
                    return EMPTY_WRITERS;
                }
                let mut v = cur.to_vec();
                v.remove(pos);
                self.intern(v)
            }
        }
    }

    fn singleton(&mut self, p: PrincipalId) -> WriterSetId {
        self.intern(vec![p])
    }

    /// Live distinct sets (including the pinned empty set).
    pub(crate) fn live(&self) -> usize {
        self.ids.len()
    }

    /// Monotonic slot-allocation count (including reuses).
    pub(crate) fn ever(&self) -> u64 {
        self.ever
    }

    /// Slot capacity (high-water mark of simultaneously live sets).
    pub(crate) fn capacity(&self) -> usize {
        self.sets.len()
    }

    /// Currently recycled (free) slots.
    pub(crate) fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Panics unless the interner agrees with `refs` — the per-set
    /// interval reference counts an index walk accumulated — and its
    /// free-list/id-map bookkeeping is self-consistent.
    pub(crate) fn check_consistency(&self, refs: &[u32]) {
        assert_eq!(refs.len(), self.sets.len());
        for (i, &rc) in refs.iter().enumerate() {
            assert_eq!(
                self.refs[i], rc,
                "set {i} refcount matches its interval references"
            );
            if rc > 0 {
                let set = &self.sets[i];
                assert_eq!(
                    self.ids.get(set),
                    Some(&WriterSetId(i as u32)),
                    "live set {i} resolvable through the id map"
                );
            }
        }
        for &slot in &self.free {
            assert_eq!(self.refs[slot as usize], 0, "free slot is dead");
            assert!(self.sets[slot as usize].is_empty(), "free slot taken");
        }
        assert_eq!(
            self.live() + self.free.len(),
            self.sets.len(),
            "every slot is live or free"
        );
    }
}

/// Clamps a range so its exclusive end saturates at `Word::MAX`
/// (the same discipline as `WriteTable`).
#[inline]
fn clamp_size(addr: Word, size: u64) -> u64 {
    size.min(Word::MAX - addr)
}

/// One address-region shard: disjoint, sorted `[start, end)` intervals,
/// each mapped to a non-empty interned writer set, plus a
/// principal-presence map (interval refcount per principal — the kfree
/// hint). Touching intervals with the same set are coalesced on every
/// mutation.
///
/// The set interner is shared across shards and passed in by the owner
/// (the single-threaded [`WriterIndex`] owns one directly; the
/// concurrent runtime core guards one with its own mutex while each
/// shard gets its own lock — the splice memmove, the expensive part, is
/// what the per-shard locking bounds).
#[derive(Debug, Default)]
pub(crate) struct IndexShard {
    starts: Vec<Word>,
    /// Exclusive ends, parallel to `starts`. Disjointness makes this
    /// vector sorted too, which the window search relies on.
    ends: Vec<Word>,
    sets: Vec<WriterSetId>,
    /// For each principal id, the number of this shard's intervals whose
    /// writer set contains it (the kfree presence hint). Dense so the
    /// per-splice maintenance is two array ops per set member; the slots
    /// of principals never seen in this shard simply stay zero.
    present: Vec<u32>,
}

impl IndexShard {
    /// Creates an empty shard.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn present_inc(&mut self, p: PrincipalId) {
        let i = p.0 as usize;
        if i >= self.present.len() {
            self.present.resize(i + 1, 0);
        }
        self.present[i] += 1;
    }

    #[inline]
    fn present_dec(&mut self, p: PrincipalId) {
        self.present[p.0 as usize] -= 1;
    }

    /// Indices of the entries overlapping `[a, e)`: `lo..hi`.
    #[inline]
    fn window(&self, a: Word, e: Word) -> (usize, usize) {
        let lo = self.ends.partition_point(|&x| x <= a);
        let hi = self.starts.partition_point(|&s| s < e);
        (lo, hi.max(lo))
    }

    /// Completes the id/refcount phase of a splice: coalesces `repl`,
    /// acquires the new segments' sets, releases the replaced entries'
    /// sets (new acquired before old release, so a set that survives the
    /// splice is never transiently freed), and records the presence-map
    /// deltas. Everything that needs the interner happens here; the
    /// returned plan is applied by [`IndexShard::apply_splice`] with no
    /// interner access at all.
    fn plan_splice(
        &self,
        interner: &mut SetInterner,
        lo: usize,
        hi: usize,
        repl: Vec<(Word, Word, WriterSetId)>,
    ) -> SplicePlan {
        let mut merged: Vec<(Word, Word, WriterSetId)> = Vec::with_capacity(repl.len());
        for seg in repl {
            debug_assert!(seg.0 < seg.1, "non-empty segment");
            if let Some(last) = merged.last_mut() {
                if last.1 == seg.0 && last.2 == seg.2 {
                    last.1 = seg.1;
                    continue;
                }
            }
            merged.push(seg);
        }
        let mut inc = Vec::new();
        let mut dec = Vec::new();
        for seg in &merged {
            interner.acquire(seg.2);
            inc.extend_from_slice(interner.get(seg.2));
        }
        for j in lo..hi {
            // Presence decrements read the set before releasing it (a
            // release can free the slot).
            dec.extend_from_slice(interner.get(self.sets[j]));
            interner.release(self.sets[j]);
        }
        SplicePlan {
            lo,
            hi,
            merged,
            inc,
            dec,
        }
    }

    /// Applies a planned splice: presence-map deltas plus the interval
    /// memmove. Pure shard-local state — runs under the shard lock alone,
    /// never the interner's.
    fn apply_splice(&mut self, plan: SplicePlan) {
        for &w in &plan.inc {
            self.present_inc(w);
        }
        for &w in &plan.dec {
            self.present_dec(w);
        }
        self.starts
            .splice(plan.lo..plan.hi, plan.merged.iter().map(|s| s.0));
        self.ends
            .splice(plan.lo..plan.hi, plan.merged.iter().map(|s| s.1));
        self.sets
            .splice(plan.lo..plan.hi, plan.merged.iter().map(|s| s.2));
    }

    /// Replaces entries `lo..hi` with `repl` (single-threaded owner path:
    /// both phases back to back).
    fn splice(
        &mut self,
        interner: &mut SetInterner,
        lo: usize,
        hi: usize,
        repl: Vec<(Word, Word, WriterSetId)>,
    ) {
        let plan = self.plan_splice(interner, lo, hi, repl);
        self.apply_splice(plan);
    }

    /// Builds the replacement list for unioning `p` into `[addr, e)`
    /// (pre-clipped): the id phase of [`IndexShard::add`], reading shard
    /// state and interning the new sets but mutating no intervals.
    fn plan_add(
        &self,
        interner: &mut SetInterner,
        p: PrincipalId,
        addr: Word,
        e: Word,
    ) -> (usize, usize, Vec<(Word, Word, WriterSetId)>) {
        let (wlo, whi) = self.window(addr, e);
        let mut lo = wlo;
        let mut hi = whi;
        let mut out = Vec::new();
        // Pull a touching left neighbor into the splice so a coalescible
        // boundary merges instead of fragmenting.
        if wlo > 0 && self.ends[wlo - 1] == addr {
            lo = wlo - 1;
            out.push((self.starts[lo], self.ends[lo], self.sets[lo]));
        }
        let mut cursor = addr;
        for j in wlo..whi {
            let (s, en, sid) = (self.starts[j], self.ends[j], self.sets[j]);
            let ov_lo = s.max(addr);
            let ov_hi = en.min(e);
            if s < ov_lo {
                out.push((s, ov_lo, sid));
            }
            if cursor < ov_lo {
                let single = interner.singleton(p);
                out.push((cursor, ov_lo, single));
            }
            let merged = interner.with(sid, p);
            out.push((ov_lo, ov_hi, merged));
            if en > ov_hi {
                out.push((ov_hi, en, sid));
            }
            cursor = ov_hi;
        }
        if cursor < e {
            let single = interner.singleton(p);
            out.push((cursor, e, single));
        }
        if whi < self.starts.len() && self.starts[whi] == e {
            out.push((self.starts[whi], self.ends[whi], self.sets[whi]));
            hi = whi + 1;
        }
        (lo, hi, out)
    }

    /// Unions `p` into `[addr, e)` within this shard (the caller has
    /// already clipped the range to the shard's bounds). Idempotent.
    pub(crate) fn add(&mut self, interner: &mut SetInterner, p: PrincipalId, addr: Word, e: Word) {
        let (lo, hi, out) = self.plan_add(interner, p, addr, e);
        self.splice(interner, lo, hi, out);
    }

    /// Concurrent-path `add`: the shard lock is held by the caller for
    /// the whole call; the shared interner mutex is taken only for the
    /// id/refcount phase, and the memmove runs under the shard lock
    /// alone. Lock order is shard → interner (the interner is a leaf).
    pub(crate) fn add_split(
        &mut self,
        interner: &StdMutex<SetInterner>,
        p: PrincipalId,
        addr: Word,
        e: Word,
    ) {
        let plan = {
            let mut it = interner.lock().expect("interner lock");
            let (lo, hi, out) = self.plan_add(&mut it, p, addr, e);
            self.plan_splice(&mut it, lo, hi, out)
        };
        self.apply_splice(plan);
    }

    /// Builds the replacement list for removing `p` from `[addr, e)`
    /// (pre-clipped): the id phase of [`IndexShard::remove`].
    fn plan_remove(
        &self,
        interner: &mut SetInterner,
        p: PrincipalId,
        addr: Word,
        e: Word,
    ) -> (usize, usize, Vec<(Word, Word, WriterSetId)>) {
        let (wlo, whi) = self.window(addr, e);
        let mut lo = wlo;
        let mut hi = whi;
        let mut out = Vec::new();
        if wlo > 0 && self.ends[wlo - 1] == addr {
            lo = wlo - 1;
            out.push((self.starts[lo], self.ends[lo], self.sets[lo]));
        }
        for j in wlo..whi {
            let (s, en, sid) = (self.starts[j], self.ends[j], self.sets[j]);
            let ov_lo = s.max(addr);
            let ov_hi = en.min(e);
            if s < ov_lo {
                out.push((s, ov_lo, sid));
            }
            let shrunk = interner.without(sid, p);
            if shrunk != EMPTY_WRITERS {
                out.push((ov_lo, ov_hi, shrunk));
            }
            if en > ov_hi {
                out.push((ov_hi, en, sid));
            }
        }
        if whi < self.starts.len() && self.starts[whi] == e {
            out.push((self.starts[whi], self.ends[whi], self.sets[whi]));
            hi = whi + 1;
        }
        (lo, hi, out)
    }

    /// Removes `p` from the writer sets of `[addr, e)` within this shard
    /// (pre-clipped); intervals whose set empties are dropped. A no-op
    /// where `p` is not a writer.
    pub(crate) fn remove(
        &mut self,
        interner: &mut SetInterner,
        p: PrincipalId,
        addr: Word,
        e: Word,
    ) {
        let (lo, hi, out) = self.plan_remove(interner, p, addr, e);
        self.splice(interner, lo, hi, out);
    }

    /// Concurrent-path `remove`: same locking discipline as
    /// [`IndexShard::add_split`].
    pub(crate) fn remove_split(
        &mut self,
        interner: &StdMutex<SetInterner>,
        p: PrincipalId,
        addr: Word,
        e: Word,
    ) {
        let plan = {
            let mut it = interner.lock().expect("interner lock");
            let (lo, hi, out) = self.plan_remove(&mut it, p, addr, e);
            self.plan_splice(&mut it, lo, hi, out)
        };
        self.apply_splice(plan);
    }

    /// True if any writer interval overlaps `[a, e)` (pre-clipped).
    pub(crate) fn overlaps(&self, a: Word, e: Word) -> bool {
        let (lo, hi) = self.window(a, e);
        lo < hi
    }

    /// Pushes the writers of `[a, e)` onto `out`, skipping principals
    /// already present there (writer sets are tiny, so the containment
    /// scan is a few compares).
    pub(crate) fn collect_writers(
        &self,
        interner: &SetInterner,
        a: Word,
        e: Word,
        out: &mut Vec<PrincipalId>,
    ) {
        let (lo, hi) = self.window(a, e);
        for j in lo..hi {
            for &w in interner.get(self.sets[j]) {
                if !out.contains(&w) {
                    out.push(w);
                }
            }
        }
    }

    /// Principals with at least one interval in this shard — the kfree
    /// presence hint.
    pub(crate) fn present_principals(&self) -> impl Iterator<Item = PrincipalId> + '_ {
        self.present
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| PrincipalId(i as u32))
    }

    /// Live intervals in this shard.
    pub(crate) fn interval_count(&self) -> usize {
        self.starts.len()
    }

    /// Iterates `(start, end, writers)` in address order.
    pub(crate) fn intervals<'a>(
        &'a self,
        interner: &'a SetInterner,
    ) -> impl Iterator<Item = (Word, Word, &'a [PrincipalId])> + 'a {
        (0..self.starts.len())
            .map(move |i| (self.starts[i], self.ends[i], interner.get(self.sets[i])))
    }

    /// Panics unless the shard's structural invariants hold within the
    /// bounds `[slo, shi)`, accumulating this shard's per-set interval
    /// references into `refs` (the owner validates the total against
    /// the shared interner); see [`WriterIndex::check_invariants`].
    pub(crate) fn check_invariants(
        &self,
        interner: &SetInterner,
        refs: &mut Vec<u32>,
        slo: Word,
        shi: Word,
    ) {
        assert_eq!(self.starts.len(), self.ends.len());
        assert_eq!(self.starts.len(), self.sets.len());
        refs.resize(interner.capacity(), 0);
        let mut present: HashMap<PrincipalId, u32> = HashMap::new();
        for i in 0..self.starts.len() {
            assert!(self.starts[i] < self.ends[i], "interval {i} non-empty");
            assert!(
                self.starts[i] >= slo && self.ends[i] <= shi,
                "interval {i} inside shard bounds"
            );
            assert_ne!(self.sets[i], EMPTY_WRITERS, "interval {i} has writers");
            let set = interner.get(self.sets[i]);
            assert!(!set.is_empty());
            assert!(set.windows(2).all(|w| w[0] < w[1]), "set sorted");
            refs[self.sets[i].0 as usize] += 1;
            for &w in set {
                *present.entry(w).or_insert(0) += 1;
            }
            if i + 1 < self.starts.len() {
                assert!(self.ends[i] <= self.starts[i + 1], "disjoint + sorted");
                assert!(
                    !(self.ends[i] == self.starts[i + 1] && self.sets[i] == self.sets[i + 1]),
                    "touching equal-set intervals must coalesce"
                );
            }
        }
        for (i, &c) in self.present.iter().enumerate() {
            let want = present.get(&PrincipalId(i as u32)).copied().unwrap_or(0);
            assert_eq!(c, want, "presence count for principal {i}");
        }
        for (p, &c) in &present {
            assert!(
                (p.0 as usize) < self.present.len() && self.present[p.0 as usize] == c,
                "presence entry for {p:?} recorded"
            );
        }
    }
}

/// Resolves which shard of a boundary list holds `addr`.
#[inline]
pub(crate) fn shard_of(boundaries: &[Word], addr: Word) -> usize {
    boundaries.partition_point(|&b| b <= addr)
}

/// Inclusive lower bound of shard `s`.
#[inline]
pub(crate) fn shard_lo(boundaries: &[Word], s: usize) -> Word {
    if s == 0 {
        0
    } else {
        boundaries[s - 1]
    }
}

/// Exclusive upper bound of shard `s` (the top shard runs to MAX, which
/// no saturated interval end can exceed).
#[inline]
pub(crate) fn shard_hi(boundaries: &[Word], s: usize) -> Word {
    boundaries.get(s).copied().unwrap_or(Word::MAX)
}

/// Normalizes shard split points: deduplicated, sorted, zeros dropped.
pub(crate) fn normalize_boundaries(mut boundaries: Vec<Word>) -> Vec<Word> {
    boundaries.retain(|&b| b > 0);
    boundaries.sort_unstable();
    boundaries.dedup();
    boundaries
}

/// Runs `f(shard, lo, hi)` over the shard segments of
/// `[addr, addr+size)`, with the range's end clamped at `Word::MAX` and
/// each non-empty segment clipped to its shard's bounds. The one place
/// the boundary-clipping walk lives: both the single-threaded
/// [`WriterIndex`] and the runtime core's locked shard array iterate
/// through it, so their clamping semantics cannot drift apart.
#[inline]
pub(crate) fn for_each_segment(
    boundaries: &[Word],
    addr: Word,
    size: u64,
    mut f: impl FnMut(usize, Word, Word),
) {
    let size = clamp_size(addr, size);
    if size == 0 {
        return;
    }
    let e = addr + size;
    let (first, last) = (shard_of(boundaries, addr), shard_of(boundaries, e - 1));
    for s in first..=last {
        let lo = addr.max(shard_lo(boundaries, s));
        let hi = e.min(shard_hi(boundaries, s));
        debug_assert!(lo < hi, "clipped segment non-empty");
        f(s, lo, hi);
    }
}

/// The reverse writer index: address-region shards of disjoint sorted
/// intervals over one shared refcounted set interner. See the module
/// docs for the sharding, GC, and presence disciplines. This is the
/// single-threaded facade; the concurrent runtime core holds the same
/// [`IndexShard`]s behind per-shard locks.
#[derive(Debug)]
pub struct WriterIndex {
    /// Sorted, distinct, non-zero shard split points; shard `i` covers
    /// `[boundaries[i-1], boundaries[i])` (first from 0, last to MAX).
    boundaries: Vec<Word>,
    shards: Vec<IndexShard>,
    interner: SetInterner,
}

impl Default for WriterIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl WriterIndex {
    /// Creates an empty single-shard index (whole address space).
    pub fn new() -> Self {
        Self::with_boundaries(Vec::new())
    }

    /// Creates an empty index sharded at the given split points
    /// (deduplicated, sorted; zeros dropped). `n` boundaries make
    /// `n + 1` shards.
    pub fn with_boundaries(boundaries: Vec<Word>) -> Self {
        let boundaries = normalize_boundaries(boundaries);
        let shards = (0..=boundaries.len()).map(|_| IndexShard::new()).collect();
        WriterIndex {
            boundaries,
            shards,
            interner: SetInterner::new(),
        }
    }

    /// The configured shard split points.
    pub fn boundaries(&self) -> &[Word] {
        &self.boundaries
    }

    /// Number of shards (`boundaries + 1`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding `addr`.
    #[inline]
    fn shard_of(&self, addr: Word) -> usize {
        shard_of(&self.boundaries, addr)
    }

    /// Records that `p` was granted WRITE over `[addr, addr+size)`:
    /// existing intervals split at the grant's boundaries and union `p`
    /// in; uncovered gaps become `{p}` intervals. Idempotent. A grant
    /// crossing a shard boundary is split there.
    pub fn add(&mut self, p: PrincipalId, addr: Word, size: u64) {
        let (shards, interner) = (&mut self.shards, &mut self.interner);
        for_each_segment(&self.boundaries, addr, size, |s, lo, hi| {
            shards[s].add(interner, p, lo, hi)
        });
    }

    /// Removes `p` from the writer sets of `[addr, addr+size)`, splitting
    /// intervals at the boundaries; intervals whose set empties are
    /// dropped. A no-op where `p` is not a writer.
    ///
    /// Callers revoking one grant must afterwards [`add`](Self::add) back
    /// any of `p`'s *other* grants still overlapping the range — the
    /// index stores merged coverage, not individual grants.
    pub fn remove(&mut self, p: PrincipalId, addr: Word, size: u64) {
        let (shards, interner) = (&mut self.shards, &mut self.interner);
        for_each_segment(&self.boundaries, addr, size, |s, lo, hi| {
            shards[s].remove(interner, p, lo, hi)
        });
    }

    /// True if any writer interval overlaps `[addr, addr+len)` (query end
    /// saturates at `Word::MAX`).
    pub fn overlaps(&self, addr: Word, len: u64) -> bool {
        let mut hit = false;
        for_each_segment(&self.boundaries, addr, len, |s, lo, hi| {
            hit |= self.shards[s].overlaps(lo, hi)
        });
        hit
    }

    /// Deduplicated writer principals of `[addr, addr+len)`, in interval
    /// order across shards. Allocation-free: the iterator yields straight
    /// out of the interned sets (the common case is a single covering
    /// interval in a single shard).
    pub fn writers_over(&self, addr: Word, len: u64) -> WritersOver<'_> {
        if len == 0 {
            return WritersOver {
                index: self,
                addr: 0,
                end: 0,
                s_first: 1,
                s_last: 0,
                s: 1,
                win: (0, 0),
                j: 0,
                k: 0,
            };
        }
        let e = addr.saturating_add(len);
        let s_first = self.shard_of(addr);
        let s_last = self.shard_of(e - 1);
        let win = self.shards[s_first].window(addr, e);
        WritersOver {
            index: self,
            addr,
            end: e,
            s_first,
            s_last,
            s: s_first,
            win,
            j: win.0,
            k: 0,
        }
    }

    /// Principals present (holding any coverage) in the shards that
    /// overlap `[addr, addr+len)` — a superset of the principals whose
    /// grants overlap the range itself. This is the kfree hint.
    pub fn present_over(&self, addr: Word, len: u64) -> Vec<PrincipalId> {
        let mut out = Vec::new();
        for_each_segment(&self.boundaries, addr, len, |s, _lo, _hi| {
            for p in self.shards[s].present_principals() {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        });
        out.sort_unstable();
        out
    }

    /// Number of live intervals across all shards (diagnostics). A range
    /// spanning shard boundaries counts one interval per shard.
    pub fn interval_count(&self) -> usize {
        self.shards.iter().map(|s| s.interval_count()).sum()
    }

    /// Number of distinct **live** interned writer sets, including the
    /// pinned empty set (diagnostics; unreferenced sets are freed and
    /// their slots recycled).
    pub fn set_count(&self) -> usize {
        self.interner.live()
    }

    /// Writer-set slot allocations ever performed, including reuses of
    /// recycled slots (monotonic; pairs with [`set_count`](Self::set_count)
    /// as the live-vs-interned GC gauge).
    pub fn sets_ever_interned(&self) -> u64 {
        self.interner.ever()
    }

    /// Interner slot capacity: high-water mark of simultaneously live
    /// sets (freed slots are recycled, so this stays bounded under
    /// churn).
    pub fn set_slot_capacity(&self) -> usize {
        self.interner.capacity()
    }

    /// Currently recycled (free) interner slots (diagnostics).
    pub fn free_set_slots(&self) -> usize {
        self.interner.free_slots()
    }

    /// Iterates `(start, end, writers)` over all intervals in address
    /// order (diagnostics).
    pub fn intervals(&self) -> impl Iterator<Item = (Word, Word, &[PrincipalId])> + '_ {
        let interner = &self.interner;
        self.shards
            .iter()
            .flat_map(move |sh| sh.intervals(interner))
    }

    /// Panics unless the structural invariants hold: sorted disjoint
    /// non-empty intervals inside their shard's bounds, non-empty sorted
    /// writer sets, no coalescible (touching, equal-set) neighbors
    /// within a shard, interner refcounts exactly matching the interval
    /// entries referencing each set (across shards), and each shard's
    /// presence map matching its interval membership. Test/proptest hook.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut refs = vec![0u32; self.interner.capacity()];
        for (si, sh) in self.shards.iter().enumerate() {
            sh.check_invariants(
                &self.interner,
                &mut refs,
                shard_lo(&self.boundaries, si),
                shard_hi(&self.boundaries, si),
            );
        }
        self.interner.check_consistency(&refs);
    }
}

/// Iterator over the deduplicated writers of a range; see
/// [`WriterIndex::writers_over`].
pub struct WritersOver<'a> {
    index: &'a WriterIndex,
    addr: Word,
    end: Word,
    s_first: usize,
    s_last: usize,
    s: usize,
    win: (usize, usize),
    j: usize,
    k: usize,
}

impl WritersOver<'_> {
    /// True if `w` was already yielded from an earlier overlapping
    /// interval (possibly in an earlier shard). Ranges rarely span more
    /// than one interval, so this almost never iterates.
    fn already_yielded(&self, w: PrincipalId, sid: WriterSetId) -> bool {
        for ss in self.s_first..=self.s {
            let sh = &self.index.shards[ss];
            let (wlo, whi) = if ss == self.s {
                (self.win.0, self.j)
            } else {
                sh.window(self.addr, self.end)
            };
            for jj in wlo..whi {
                let sj = sh.sets[jj];
                if sj == sid || self.index.interner.get(sj).binary_search(&w).is_ok() {
                    return true;
                }
            }
        }
        false
    }
}

impl Iterator for WritersOver<'_> {
    type Item = PrincipalId;

    fn next(&mut self) -> Option<PrincipalId> {
        loop {
            if self.j >= self.win.1 {
                if self.s >= self.s_last {
                    return None;
                }
                self.s += 1;
                self.win = self.index.shards[self.s].window(self.addr, self.end);
                self.j = self.win.0;
                self.k = 0;
                continue;
            }
            let sh = &self.index.shards[self.s];
            let sid = sh.sets[self.j];
            let set = self.index.interner.get(sid);
            while self.k < set.len() {
                let w = set[self.k];
                self.k += 1;
                if !self.already_yielded(w, sid) {
                    return Some(w);
                }
            }
            self.j += 1;
            self.k = 0;
        }
    }
}

// --------------------------------------------------------------- baseline

/// The paper's writer lookup (§5): one WRITE table per principal, every
/// table probed on every query. Superseded on the indirect-call slow
/// path by [`WriterIndex`]; kept as the measured baseline for
/// `lxfi-bench`'s `writer_index` benches and as a property-test oracle,
/// mirroring the `LinearWriteTable` treatment of the WRITE-table
/// refactor.
#[derive(Debug, Default)]
pub struct LinearWriterIndex {
    tables: Vec<WriteTable>,
}

impl LinearWriterIndex {
    /// Creates an empty baseline index.
    pub fn new() -> Self {
        Self::default()
    }

    fn table_mut(&mut self, p: PrincipalId) -> &mut WriteTable {
        let i = p.0 as usize;
        if i >= self.tables.len() {
            self.tables.resize_with(i + 1, WriteTable::new);
        }
        &mut self.tables[i]
    }

    /// Grants `[addr, addr+size)` to `p`.
    pub fn grant(&mut self, p: PrincipalId, addr: Word, size: u64) {
        self.table_mut(p).grant(addr, size);
    }

    /// Revokes the exact grant `(addr, size)` from `p`.
    pub fn revoke(&mut self, p: PrincipalId, addr: Word, size: u64) -> bool {
        self.table_mut(p).revoke(addr, size)
    }

    /// Revokes every grant of `p` intersecting `[addr, addr+size)`.
    pub fn revoke_overlapping(&mut self, p: PrincipalId, addr: Word, size: u64) -> usize {
        self.table_mut(p).revoke_overlapping(addr, size)
    }

    /// The global walk: every principal's table probed for overlap with
    /// `[addr, addr+len)` — linear in principals, allocating per call.
    pub fn writers_of(&self, addr: Word, len: u64) -> Vec<PrincipalId> {
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, t)| t.overlaps(addr, len))
            .map(|(i, _)| PrincipalId(i as u32))
            .collect()
    }

    /// Number of principal slots (diagnostics).
    pub fn principal_count(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: PrincipalId = PrincipalId(0);
    const P1: PrincipalId = PrincipalId(1);
    const P2: PrincipalId = PrincipalId(2);

    fn writers(ix: &WriterIndex, addr: Word, len: u64) -> Vec<PrincipalId> {
        ix.writers_over(addr, len).collect()
    }

    #[test]
    fn single_grant_single_writer() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 64);
        ix.check_invariants();
        assert_eq!(writers(&ix, 0x1000, 8), vec![P0]);
        assert_eq!(writers(&ix, 0x103f, 8), vec![P0], "tail byte overlaps");
        assert!(writers(&ix, 0x1040, 8).is_empty());
        assert!(
            writers(&ix, 0xff8, 8).is_empty(),
            "exclusive end: [0xff8, 0x1000) misses the grant"
        );
    }

    #[test]
    fn overlapping_grants_union_and_split() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x100);
        ix.add(P1, 0x1080, 0x100);
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 3, "split at 0x1080 and 0x1100");
        assert_eq!(writers(&ix, 0x1000, 8), vec![P0]);
        assert_eq!(writers(&ix, 0x1080, 8), vec![P0, P1]);
        assert_eq!(writers(&ix, 0x1100, 8), vec![P1]);
        // A probe spanning the split point still yields each writer once.
        assert_eq!(writers(&ix, 0x107c, 8), vec![P0, P1]);
    }

    #[test]
    fn remove_merges_back() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x100);
        ix.add(P1, 0x1080, 0x10);
        assert_eq!(ix.interval_count(), 3);
        ix.remove(P1, 0x1080, 0x10);
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 1, "splits coalesce after removal");
        assert_eq!(writers(&ix, 0x1080, 8), vec![P0]);
    }

    #[test]
    fn remove_creates_gap() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x30);
        ix.remove(P0, 0x1010, 0x10);
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 2);
        assert_eq!(writers(&ix, 0x1000, 8), vec![P0]);
        assert!(writers(&ix, 0x1010, 8).is_empty());
        assert_eq!(writers(&ix, 0x1020, 8), vec![P0]);
        // A probe across the gap still finds P0 exactly once.
        assert_eq!(writers(&ix, 0x1008, 0x20), vec![P0]);
    }

    #[test]
    fn idempotent_add_does_not_fragment() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x100);
        ix.add(P0, 0x1040, 0x10); // interior re-grant, same writer
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 1, "equal-set splits re-coalesce");
    }

    #[test]
    fn adjacent_same_set_coalesces() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x40);
        ix.add(P0, 0x1040, 0x40);
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 1);
        assert_eq!(writers(&ix, 0x1038, 16), vec![P0]);
    }

    #[test]
    fn three_writers_dedup_across_intervals() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x100);
        ix.add(P1, 0x1000, 0x80);
        ix.add(P2, 0x1040, 0x100);
        ix.check_invariants();
        let all = writers(&ix, 0x1000, 0x200);
        assert_eq!(all, vec![P0, P1, P2]);
        assert_eq!(writers(&ix, 0x1060, 8), vec![P0, P1, P2]);
        assert_eq!(writers(&ix, 0x1090, 8), vec![P0, P2]);
    }

    #[test]
    fn near_max_saturates() {
        let mut ix = WriterIndex::new();
        ix.add(P0, u64::MAX - 8, 16); // clamps to [MAX-8, MAX)
        ix.check_invariants();
        assert_eq!(writers(&ix, u64::MAX - 4, 8), vec![P0]);
        assert!(writers(&ix, u64::MAX, 8).is_empty(), "empty clamped probe");
        ix.add(P1, u64::MAX, 8); // clamps to nothing
        assert_eq!(ix.interval_count(), 1);
        ix.remove(P0, u64::MAX - 8, 16);
        assert_eq!(ix.interval_count(), 0);
    }

    #[test]
    fn zero_len_probe_is_empty() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 64);
        assert!(writers(&ix, 0x1010, 0).is_empty());
        assert!(!ix.overlaps(0x1010, 0));
    }

    #[test]
    fn set_interning_shares_ids_and_gcs_transients() {
        let mut ix = WriterIndex::new();
        for i in 0..8u64 {
            ix.add(P0, 0x1000 + i * 0x100, 0x40);
            ix.add(P1, 0x1000 + i * 0x100, 0x40);
        }
        ix.check_invariants();
        // 8 disjoint {P0,P1} regions share ONE live set besides the
        // pinned empty set; the transient {P0} singletons created before
        // each P1 add were freed when their last interval upgraded.
        assert_eq!(ix.interval_count(), 8);
        assert_eq!(ix.set_count(), 2, "live: {{}} and {{P0,P1}}");
        assert!(
            ix.sets_ever_interned() >= 3,
            "transient {{P0}} was interned"
        );
        assert!(
            ix.set_slot_capacity() <= 3,
            "freed slots recycled: capacity {}",
            ix.set_slot_capacity()
        );
    }

    #[test]
    fn removing_last_reference_frees_the_set() {
        let mut ix = WriterIndex::new();
        ix.add(P0, 0x1000, 0x40);
        ix.add(P1, 0x1000, 0x40);
        assert_eq!(ix.set_count(), 2); // {}, {P0,P1}
        ix.remove(P0, 0x1000, 0x40);
        ix.check_invariants();
        assert_eq!(ix.set_count(), 2, "{{P0,P1}} freed, {{P1}} live");
        ix.remove(P1, 0x1000, 0x40);
        ix.check_invariants();
        assert_eq!(ix.set_count(), 1, "only the pinned empty set remains");
        assert_eq!(ix.interval_count(), 0);
        assert!(ix.free_set_slots() > 0, "slots await recycling");
    }

    #[test]
    fn presence_tracks_interval_membership() {
        let mut ix = WriterIndex::new();
        assert!(ix.present_over(0x1000, 0x100).is_empty());
        ix.add(P0, 0x1000, 0x100);
        ix.add(P1, 0x1080, 0x10);
        ix.check_invariants();
        // Single shard: presence is shard-wide (a superset of the
        // range's writers).
        assert_eq!(ix.present_over(0x1000, 8), vec![P0, P1]);
        ix.remove(P1, 0x1080, 0x10);
        assert_eq!(ix.present_over(0x1000, 8), vec![P0]);
        ix.remove(P0, 0x1000, 0x100);
        assert!(ix.present_over(0x1000, 8).is_empty());
    }

    #[test]
    fn presence_is_per_shard() {
        let mut ix = WriterIndex::with_boundaries(vec![0x2000]);
        ix.add(P0, 0x1000, 0x100); // shard 0
        ix.add(P1, 0x3000, 0x100); // shard 1
        ix.check_invariants();
        assert_eq!(ix.present_over(0x1000, 8), vec![P0]);
        assert_eq!(ix.present_over(0x3000, 8), vec![P1]);
        // A range spanning the boundary unions both shards' presence.
        assert_eq!(ix.present_over(0x1000, 0x3000), vec![P0, P1]);
    }

    // ------------------------------------------------------------ shards

    #[test]
    fn sharded_answers_match_unsharded() {
        let bounds = vec![0x1080, 0x1100, 0x2000];
        let mut sharded = WriterIndex::with_boundaries(bounds);
        let mut flat = WriterIndex::new();
        let ops: &[(PrincipalId, Word, u64)] = &[
            (P0, 0x1000, 0x100), // crosses 0x1080
            (P1, 0x1040, 0x200), // crosses 0x1080 and 0x1100
            (P2, 0x1ff0, 0x20),  // crosses 0x2000
            (P0, 0x3000, 0x40),  // inside the top shard
        ];
        for &(p, a, s) in ops {
            sharded.add(p, a, s);
            flat.add(p, a, s);
            sharded.check_invariants();
        }
        for probe in [
            0x0ff8u64, 0x1000, 0x1040, 0x107c, 0x1080, 0x10fc, 0x1100, 0x123c, 0x1ff0, 0x1ffc,
            0x2000, 0x2008, 0x3000,
        ] {
            assert_eq!(
                writers(&sharded, probe, 8),
                writers(&flat, probe, 8),
                "probe {probe:#x}"
            );
            assert_eq!(sharded.overlaps(probe, 8), flat.overlaps(probe, 8));
        }
        // A wide probe spanning every shard still dedups writers.
        let mut wide: Vec<_> = writers(&sharded, 0x1000, 0x2100);
        wide.sort();
        assert_eq!(wide, vec![P0, P1, P2]);
        // Removals across boundaries agree too.
        sharded.remove(P1, 0x1040, 0x200);
        flat.remove(P1, 0x1040, 0x200);
        sharded.check_invariants();
        for probe in [0x1040u64, 0x1080, 0x1100, 0x1200] {
            assert_eq!(
                writers(&sharded, probe, 8),
                writers(&flat, probe, 8),
                "post-remove probe {probe:#x}"
            );
        }
    }

    #[test]
    fn boundary_crossing_grant_splits_per_shard() {
        let mut ix = WriterIndex::with_boundaries(vec![0x1080]);
        assert_eq!(ix.shard_count(), 2);
        ix.add(P0, 0x1000, 0x100);
        ix.check_invariants();
        // One logical region, two per-shard intervals (no cross-shard
        // coalescing), one live non-empty set (the interner is shared).
        assert_eq!(ix.interval_count(), 2);
        assert_eq!(ix.set_count(), 2);
        assert_eq!(writers(&ix, 0x1078, 16), vec![P0], "probe across boundary");
        ix.remove(P0, 0x1000, 0x100);
        assert_eq!(ix.interval_count(), 0);
        assert_eq!(ix.set_count(), 1, "only the pinned empty set stays");
    }

    #[test]
    fn boundaries_normalize() {
        let ix = WriterIndex::with_boundaries(vec![0x2000, 0, 0x1000, 0x2000]);
        assert_eq!(ix.boundaries(), &[0x1000, 0x2000]);
        assert_eq!(ix.shard_count(), 3);
    }

    #[test]
    fn near_max_sharded_saturates() {
        let mut ix = WriterIndex::with_boundaries(vec![u64::MAX - 0x100]);
        ix.add(P0, u64::MAX - 0x180, 0x1000); // clamps to [MAX-0x180, MAX)
        ix.check_invariants();
        assert_eq!(ix.interval_count(), 2, "split at the boundary");
        assert_eq!(writers(&ix, u64::MAX - 0x110, 0x20), vec![P0]);
        assert_eq!(writers(&ix, u64::MAX - 8, 8), vec![P0]);
        ix.remove(P0, u64::MAX - 0x180, u64::MAX);
        assert_eq!(ix.interval_count(), 0);
        ix.check_invariants();
    }

    #[test]
    fn linear_baseline_agrees() {
        let mut ix = WriterIndex::new();
        let mut lin = LinearWriterIndex::new();
        let ops: &[(PrincipalId, Word, u64)] = &[
            (P0, 0x1000, 0x100),
            (P1, 0x1080, 0x100),
            (P2, 0x10f8, 0x10),
            (P0, 0x3000, 0x40),
        ];
        for &(p, a, s) in ops {
            ix.add(p, a, s);
            lin.grant(p, a, s);
        }
        for probe in [0x1000u64, 0x1080, 0x10f8, 0x1100, 0x2000, 0x3000] {
            let mut got = writers(&ix, probe, 8);
            got.sort();
            assert_eq!(got, lin.writers_of(probe, 8), "probe {probe:#x}");
        }
    }
}
