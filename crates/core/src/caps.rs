//! Capability representations and per-principal capability tables (§3.2, §5).
//!
//! Three capability types exist:
//!
//! - `WRITE(ptr, size)` — the principal may write any value into
//!   `[ptr, ptr+size)` and pass interior pointers to kernel routines that
//!   require writable memory;
//! - `REF(t, a)` — object ownership: the principal may pass `a` to kernel
//!   functions requiring a REF of type `t`, *without* write access;
//! - `CALL(a)` — the principal may call or jump to address `a`.
//!
//! WRITE capabilities live in a hash table keyed by the address with its
//! low 12 bits masked (§5): a range capability is inserted into every
//! 4 KiB-aligned slot it overlaps, so a containment query touches exactly
//! one slot and scans a short list. The paper found this faster than a
//! balanced tree because kernel modules rarely manipulate objects larger
//! than a page.

use std::collections::{HashMap, HashSet};

use lxfi_machine::Word;

/// Interned REF type (e.g. `struct pci_dev`, or a synthetic type like
/// `io_port` per Guideline 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RefTypeId(pub u32);

/// A fully resolved capability type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CapType {
    /// WRITE over a byte range.
    Write,
    /// CALL of a code address.
    Call,
    /// REF of an interned type.
    Ref(RefTypeId),
}

/// A fully resolved capability, ready to grant / revoke / check.
///
/// For `Call` and `Ref` the `size` field is unused and normalized to 0 so
/// capability identity is well-defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RawCap {
    /// Capability type.
    pub ctype: CapType,
    /// Address / target / REF value.
    pub addr: Word,
    /// Byte length (WRITE only).
    pub size: u64,
}

impl RawCap {
    /// A WRITE capability over `[addr, addr+size)`.
    pub fn write(addr: Word, size: u64) -> Self {
        RawCap {
            ctype: CapType::Write,
            addr,
            size,
        }
    }

    /// A CALL capability for `target`.
    pub fn call(target: Word) -> Self {
        RawCap {
            ctype: CapType::Call,
            addr: target,
            size: 0,
        }
    }

    /// A REF capability of type `t` for value `a`.
    pub fn reference(t: RefTypeId, a: Word) -> Self {
        RawCap {
            ctype: CapType::Ref(t),
            addr: a,
            size: 0,
        }
    }
}

const SLOT_SHIFT: u32 = 12;

/// WRITE-capability table: ranges hashed under 12-bit-masked keys.
#[derive(Debug, Default, Clone)]
pub struct WriteTable {
    slots: HashMap<u64, Vec<(Word, u64)>>,
    /// Number of live (addr, size) grants — slot entries are replicas.
    entries: usize,
}

impl WriteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot_range(addr: Word, size: u64) -> std::ops::RangeInclusive<u64> {
        let first = addr >> SLOT_SHIFT;
        let last = if size == 0 {
            first
        } else {
            (addr + (size - 1)) >> SLOT_SHIFT
        };
        first..=last
    }

    /// Grants `[addr, addr+size)`. Duplicate grants are idempotent.
    pub fn grant(&mut self, addr: Word, size: u64) {
        if size == 0 {
            return;
        }
        if self.owns_exact(addr, size) {
            return;
        }
        for s in Self::slot_range(addr, size) {
            self.slots.entry(s).or_default().push((addr, size));
        }
        self.entries += 1;
    }

    /// Revokes the exact capability `(addr, size)`; returns whether it was
    /// present.
    pub fn revoke(&mut self, addr: Word, size: u64) -> bool {
        if size == 0 || !self.owns_exact(addr, size) {
            return false;
        }
        for s in Self::slot_range(addr, size) {
            if let Some(v) = self.slots.get_mut(&s) {
                v.retain(|&(a, l)| !(a == addr && l == size));
                if v.is_empty() {
                    self.slots.remove(&s);
                }
            }
        }
        self.entries -= 1;
        true
    }

    /// Revokes every capability whose range intersects `[addr, addr+size)`.
    /// Returns the number of capabilities removed. Used when freeing
    /// memory must strip *all* residual access.
    pub fn revoke_overlapping(&mut self, addr: Word, size: u64) -> usize {
        if size == 0 {
            return 0;
        }
        let end = addr + size;
        // Collect victims from the slots the query range covers; a
        // capability overlapping the query necessarily appears in one of
        // those slots (it overlaps a page the query overlaps).
        let mut victims: HashSet<(Word, u64)> = HashSet::new();
        for s in Self::slot_range(addr, size) {
            if let Some(v) = self.slots.get(&s) {
                for &(a, l) in v {
                    if a < end && addr < a + l {
                        victims.insert((a, l));
                    }
                }
            }
        }
        for &(a, l) in &victims {
            self.revoke(a, l);
        }
        victims.len()
    }

    /// True if the exact capability `(addr, size)` is present.
    pub fn owns_exact(&self, addr: Word, size: u64) -> bool {
        if size == 0 {
            return false;
        }
        self.slots
            .get(&(addr >> SLOT_SHIFT))
            .is_some_and(|v| v.iter().any(|&(a, l)| a == addr && l == size))
    }

    /// True if any capability intersects `[addr, addr+len)`.
    pub fn overlaps(&self, addr: Word, len: u64) -> bool {
        if len == 0 {
            return false;
        }
        let end = addr.saturating_add(len);
        Self::slot_range(addr, len).any(|s| {
            self.slots
                .get(&s)
                .is_some_and(|v| v.iter().any(|&(a, l)| a < end && addr < a + l))
        })
    }

    /// True if some single capability covers all of `[addr, addr+len)`.
    pub fn covers(&self, addr: Word, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let Some(end) = addr.checked_add(len) else {
            return false;
        };
        self.slots
            .get(&(addr >> SLOT_SHIFT))
            .is_some_and(|v| v.iter().any(|&(a, l)| a <= addr && end <= a + l))
    }

    /// Number of live capabilities.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no capability is held.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Iterates over live `(addr, size)` grants (deduplicated).
    pub fn iter(&self) -> impl Iterator<Item = (Word, u64)> + '_ {
        let mut seen = HashSet::new();
        self.slots
            .values()
            .flatten()
            .copied()
            .filter(move |e| seen.insert(*e))
    }
}

/// All capabilities of one principal.
#[derive(Debug, Default, Clone)]
pub struct CapSet {
    /// WRITE capabilities.
    pub write: WriteTable,
    /// CALL capabilities (hashed by target address, §5).
    pub call: HashSet<Word>,
    /// REF capabilities (hashed by referred address, §5).
    pub refs: HashSet<(RefTypeId, Word)>,
}

impl CapSet {
    /// Creates an empty capability set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants a capability.
    pub fn grant(&mut self, cap: RawCap) {
        match cap.ctype {
            CapType::Write => self.write.grant(cap.addr, cap.size),
            CapType::Call => {
                self.call.insert(cap.addr);
            }
            CapType::Ref(t) => {
                self.refs.insert((t, cap.addr));
            }
        }
    }

    /// Revokes a capability; returns whether it was present.
    pub fn revoke(&mut self, cap: RawCap) -> bool {
        match cap.ctype {
            CapType::Write => self.write.revoke(cap.addr, cap.size),
            CapType::Call => self.call.remove(&cap.addr),
            CapType::Ref(t) => self.refs.remove(&(t, cap.addr)),
        }
    }

    /// Ownership test. For WRITE this is *coverage*: a single held range
    /// must contain `[addr, addr+size)` (so a capability for a whole slab
    /// object satisfies a check on an interior field).
    pub fn owns(&self, cap: RawCap) -> bool {
        match cap.ctype {
            CapType::Write => self.write.covers(cap.addr, cap.size),
            CapType::Call => self.call.contains(&cap.addr),
            CapType::Ref(t) => self.refs.contains(&(t, cap.addr)),
        }
    }

    /// Total number of capabilities (diagnostics).
    pub fn len(&self) -> usize {
        self.write.len() + self.call.len() + self.refs.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_grant_covers_interior() {
        let mut t = WriteTable::new();
        t.grant(0x1000, 256);
        assert!(t.covers(0x1000, 256));
        assert!(t.covers(0x1010, 16));
        assert!(t.covers(0x10ff, 1));
        assert!(!t.covers(0x1000, 257));
        assert!(!t.covers(0xfff, 2));
        assert!(!t.covers(0x1100, 1));
    }

    #[test]
    fn write_cross_page_range_found_from_any_slot() {
        let mut t = WriteTable::new();
        // A 3-page capability: queries anywhere inside must hit.
        t.grant(0x1800, 0x3000);
        assert!(t.covers(0x1800, 8));
        assert!(t.covers(0x2000, 8));
        assert!(t.covers(0x3000, 8));
        assert!(t.covers(0x47f8, 8));
        assert!(!t.covers(0x4800, 1));
    }

    #[test]
    fn revoke_exact_removes_all_replicas() {
        let mut t = WriteTable::new();
        t.grant(0x1800, 0x3000);
        assert!(t.revoke(0x1800, 0x3000));
        assert!(!t.covers(0x2000, 8));
        assert_eq!(t.len(), 0);
        assert!(!t.revoke(0x1800, 0x3000), "double revoke is false");
    }

    #[test]
    fn grant_is_idempotent() {
        let mut t = WriteTable::new();
        t.grant(0x1000, 64);
        t.grant(0x1000, 64);
        assert_eq!(t.len(), 1);
        assert!(t.revoke(0x1000, 64));
        assert!(!t.covers(0x1000, 1));
    }

    #[test]
    fn revoke_overlapping_strips_partial_ranges() {
        let mut t = WriteTable::new();
        t.grant(0x1000, 64);
        t.grant(0x1040, 64);
        t.grant(0x2000, 64);
        // Freeing [0x1000, 0x1080) kills the first two only.
        assert_eq!(t.revoke_overlapping(0x1000, 0x80), 2);
        assert!(!t.covers(0x1000, 1));
        assert!(!t.covers(0x1040, 1));
        assert!(t.covers(0x2000, 64));
    }

    #[test]
    fn zero_length_checks_are_trivially_true() {
        let t = WriteTable::new();
        assert!(t.covers(0x1234, 0));
    }

    #[test]
    fn overflow_range_rejected() {
        let mut t = WriteTable::new();
        t.grant(u64::MAX - 8, 8);
        assert!(!t.covers(u64::MAX - 4, 8), "overflowing query is false");
    }

    #[test]
    fn capset_call_and_ref() {
        let mut s = CapSet::new();
        s.grant(RawCap::call(0xf000));
        s.grant(RawCap::reference(RefTypeId(3), 0x9000));
        assert!(s.owns(RawCap::call(0xf000)));
        assert!(!s.owns(RawCap::call(0xf008)));
        assert!(s.owns(RawCap::reference(RefTypeId(3), 0x9000)));
        assert!(
            !s.owns(RawCap::reference(RefTypeId(4), 0x9000)),
            "REF identity includes the type"
        );
        assert!(s.revoke(RawCap::call(0xf000)));
        assert!(!s.owns(RawCap::call(0xf000)));
    }

    #[test]
    fn ref_does_not_imply_write() {
        let mut s = CapSet::new();
        s.grant(RawCap::reference(RefTypeId(0), 0x9000));
        assert!(
            !s.owns(RawCap::write(0x9000, 8)),
            "REF grants ownership, not write access (§3.2)"
        );
    }

    #[test]
    fn iter_deduplicates_replicas() {
        let mut t = WriteTable::new();
        t.grant(0x1800, 0x3000);
        t.grant(0x1000, 8);
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all.len(), 2);
    }
}
