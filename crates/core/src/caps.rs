//! Capability representations and per-principal capability tables (§3.2, §5).
//!
//! Three capability types exist:
//!
//! - `WRITE(ptr, size)` — the principal may write any value into
//!   `[ptr, ptr+size)` and pass interior pointers to kernel routines that
//!   require writable memory;
//! - `REF(t, a)` — object ownership: the principal may pass `a` to kernel
//!   functions requiring a REF of type `t`, *without* write access;
//! - `CALL(a)` — the principal may call or jump to address `a`.
//!
//! WRITE capabilities live in [`WriteTable`], a sorted interval index:
//! grants are kept ordered by `(start, size)` alongside a running
//! prefix-maximum of interval ends, so containment and overlap queries
//! binary-search to the query point and walk left only while the prefix
//! maximum proves an interval can still reach the query — O(log n + k)
//! where k is the number of intervals overlapping the probe (k ≤ 1 for
//! the disjoint grants kernel modules hold in practice).
//!
//! The paper's original structure — ranges replicated into 4 KiB-masked
//! hash slots, each slot scanned linearly (§5) — is retained as
//! [`LinearWriteTable`], the measured baseline for the guard
//! microbenchmarks in `lxfi-bench`.
//!
//! # Overflow discipline
//!
//! All range ends are computed saturating at `Word::MAX`: a grant whose
//! nominal end would exceed the address space is clamped to
//! `[addr, Word::MAX)` (so the final byte of the address space is never
//! coverable — ends are exclusive and `2^64` is unrepresentable), and
//! queries whose end would overflow return `false`. No path panics in
//! debug builds for ranges near `Word::MAX`.

use std::collections::{HashMap, HashSet};

use lxfi_machine::Word;

/// Interned REF type (e.g. `struct pci_dev`, or a synthetic type like
/// `io_port` per Guideline 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RefTypeId(pub u32);

/// A fully resolved capability type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CapType {
    /// WRITE over a byte range.
    Write,
    /// CALL of a code address.
    Call,
    /// REF of an interned type.
    Ref(RefTypeId),
}

/// A fully resolved capability, ready to grant / revoke / check.
///
/// For `Call` and `Ref` the `size` field is unused and normalized to 0 so
/// capability identity is well-defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RawCap {
    /// Capability type.
    pub ctype: CapType,
    /// Address / target / REF value.
    pub addr: Word,
    /// Byte length (WRITE only).
    pub size: u64,
}

impl RawCap {
    /// A WRITE capability over `[addr, addr+size)`.
    pub fn write(addr: Word, size: u64) -> Self {
        RawCap {
            ctype: CapType::Write,
            addr,
            size,
        }
    }

    /// A CALL capability for `target`.
    pub fn call(target: Word) -> Self {
        RawCap {
            ctype: CapType::Call,
            addr: target,
            size: 0,
        }
    }

    /// A REF capability of type `t` for value `a`.
    pub fn reference(t: RefTypeId, a: Word) -> Self {
        RawCap {
            ctype: CapType::Ref(t),
            addr: a,
            size: 0,
        }
    }
}

/// WRITE-capability table: sorted intervals with a prefix-maximum end
/// index (see the module docs for the query algorithm).
///
/// # Zero-size semantics
///
/// `grant(_, 0)` is a silent no-op — an empty range conveys no
/// authority, so there is nothing to record — while `covers(_, 0)` and
/// the other zero-length queries are *vacuously true/false* ("every
/// byte of the empty range is covered"). The asymmetry is deliberate:
/// a zero-length write is always permitted, but granting one must not
/// create a revocable entry. `revoke(_, 0)` correspondingly returns
/// `false`.
#[derive(Debug, Default, Clone)]
pub struct WriteTable {
    /// Interval starts, sorted ascending (ties broken by size).
    starts: Vec<Word>,
    /// Interval sizes, parallel to `starts`. Pre-clamped so
    /// `starts[i] + sizes[i]` never overflows.
    sizes: Vec<u64>,
    /// `prefix_max_end[i] = max(starts[j] + sizes[j] for j <= i)`.
    prefix_max_end: Vec<Word>,
}

/// Clamps a grant so its exclusive end saturates at `Word::MAX`.
#[inline]
fn clamp_size(addr: Word, size: u64) -> u64 {
    size.min(Word::MAX - addr)
}

impl WriteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the first entry with `(start, size)` lexicographically
    /// `>=` the key.
    #[inline]
    fn lower_bound(&self, addr: Word, size: u64) -> usize {
        let (mut lo, mut hi) = (0, self.starts.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if (self.starts[mid], self.sizes[mid]) < (addr, size) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Rebuilds `prefix_max_end` from index `from` to the end.
    fn rebuild_prefix(&mut self, from: usize) {
        self.prefix_max_end.truncate(from);
        let mut run = if from == 0 {
            0
        } else {
            self.prefix_max_end[from - 1]
        };
        for i in from..self.starts.len() {
            run = run.max(self.starts[i] + self.sizes[i]);
            self.prefix_max_end.push(run);
        }
    }

    /// Grants `[addr, addr+size)`. Duplicate grants are idempotent; a
    /// range whose end would overflow saturates at `Word::MAX` (module
    /// docs). Zero-size grants are no-ops.
    pub fn grant(&mut self, addr: Word, size: u64) {
        let size = clamp_size(addr, size);
        if size == 0 {
            return;
        }
        let i = self.lower_bound(addr, size);
        if i < self.starts.len() && self.starts[i] == addr && self.sizes[i] == size {
            return; // idempotent
        }
        self.starts.insert(i, addr);
        self.sizes.insert(i, size);
        self.rebuild_prefix(i);
    }

    /// Revokes the exact capability `(addr, size)`; returns whether it
    /// was present. Sizes are clamped the same way as in [`grant`], so a
    /// saturated grant revokes with the size it was granted under.
    ///
    /// [`grant`]: WriteTable::grant
    pub fn revoke(&mut self, addr: Word, size: u64) -> bool {
        let size = clamp_size(addr, size);
        if size == 0 {
            return false;
        }
        let i = self.lower_bound(addr, size);
        if i >= self.starts.len() || self.starts[i] != addr || self.sizes[i] != size {
            return false;
        }
        self.starts.remove(i);
        self.sizes.remove(i);
        self.rebuild_prefix(i);
        true
    }

    /// Revokes every capability whose range intersects `[addr, addr+size)`.
    /// Returns the number of capabilities removed. Used when freeing
    /// memory must strip *all* residual access.
    pub fn revoke_overlapping(&mut self, addr: Word, size: u64) -> usize {
        self.revoke_overlapping_span(addr, size).0
    }

    /// Like [`revoke_overlapping`], but also reports the union extent
    /// `(min start, max end)` of the removed capabilities — a whole grant
    /// is revoked even when only partially intersected, so the extent can
    /// reach beyond the revocation range. The reverse writer index uses
    /// it to know how far a principal's coverage actually changed.
    ///
    /// [`revoke_overlapping`]: WriteTable::revoke_overlapping
    pub fn revoke_overlapping_span(
        &mut self,
        addr: Word,
        size: u64,
    ) -> (usize, Option<(Word, Word)>) {
        if size == 0 {
            return (0, None);
        }
        let end = addr.saturating_add(size);
        let before = self.starts.len();
        // Overlap candidates all have start < end; entries at or past the
        // partition point cannot intersect.
        let cut = self.starts.partition_point(|&a| a < end);
        let mut first_removed = cut;
        let mut span: Option<(Word, Word)> = None;
        let mut w = 0;
        for i in 0..cut {
            let iv_end = self.starts[i] + self.sizes[i];
            if iv_end > addr {
                first_removed = first_removed.min(i);
                span = Some(match span {
                    None => (self.starts[i], iv_end),
                    Some((lo, hi)) => (lo.min(self.starts[i]), hi.max(iv_end)),
                });
                continue; // overlapping: drop
            }
            if w != i {
                self.starts[w] = self.starts[i];
                self.sizes[w] = self.sizes[i];
            }
            w += 1;
        }
        if w != cut {
            self.starts.copy_within(cut.., w);
            self.sizes.copy_within(cut.., w);
            let n = before - (cut - w);
            self.starts.truncate(n);
            self.sizes.truncate(n);
            self.rebuild_prefix(first_removed);
        }
        (before - self.starts.len(), span)
    }

    /// True if the exact capability `(addr, size)` is present.
    pub fn owns_exact(&self, addr: Word, size: u64) -> bool {
        let size = clamp_size(addr, size);
        if size == 0 {
            return false;
        }
        let i = self.lower_bound(addr, size);
        i < self.starts.len() && self.starts[i] == addr && self.sizes[i] == size
    }

    /// True if any capability intersects `[addr, addr+len)`.
    pub fn overlaps(&self, addr: Word, len: u64) -> bool {
        if len == 0 {
            return false;
        }
        let end = addr.saturating_add(len);
        let mut i = self.starts.partition_point(|&a| a < end);
        while i > 0 {
            i -= 1;
            if self.prefix_max_end[i] <= addr {
                return false; // nothing at or left of i reaches past addr
            }
            if self.starts[i] + self.sizes[i] > addr {
                return true;
            }
        }
        false
    }

    /// True if some single capability covers all of `[addr, addr+len)`.
    pub fn covers(&self, addr: Word, len: u64) -> bool {
        self.covering(addr, len).is_some() || len == 0
    }

    /// The `(start, end)` of a single capability covering all of
    /// `[addr, addr+len)`, if one exists. The guard fast-path cache
    /// stores this interval so repeated writes into the same grant skip
    /// the search entirely.
    pub fn covering(&self, addr: Word, len: u64) -> Option<(Word, Word)> {
        if len == 0 {
            return None;
        }
        let end = addr.checked_add(len)?;
        // Candidates all have start <= addr.
        let mut i = self.starts.partition_point(|&a| a <= addr);
        while i > 0 {
            i -= 1;
            if self.prefix_max_end[i] < end {
                return None; // no interval at or left of i reaches end
            }
            let iv_end = self.starts[i] + self.sizes[i];
            if iv_end >= end {
                return Some((self.starts[i], iv_end));
            }
        }
        None
    }

    /// Number of live capabilities.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True when no capability is held.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Iterates over live `(addr, size)` grants in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Word, u64)> + '_ {
        self.starts.iter().copied().zip(self.sizes.iter().copied())
    }

    /// Iterates over the grants intersecting `[addr, addr+len)`, in
    /// address order (used to reinstate residual writer-index coverage
    /// after a revocation).
    pub fn iter_overlapping(&self, addr: Word, len: u64) -> impl Iterator<Item = (Word, u64)> + '_ {
        let end = if len == 0 {
            addr
        } else {
            addr.saturating_add(len)
        };
        let cut = self.starts.partition_point(|&a| a < end);
        self.starts[..cut]
            .iter()
            .copied()
            .zip(self.sizes[..cut].iter().copied())
            .filter(move |&(a, s)| len != 0 && a + s > addr)
    }
}

// --------------------------------------------------------------- baseline

const SLOT_SHIFT: u32 = 12;

/// The paper's original WRITE table (§5): ranges hashed under
/// 12-bit-masked keys, one replica per 4 KiB slot the range overlaps,
/// each slot scanned linearly.
///
/// Superseded by the interval-indexed [`WriteTable`] on the guard hot
/// path; kept as the measured baseline for `lxfi-bench`'s guard
/// microbenchmarks (Figure 11/13 companions) so the speedup is a
/// reproducible number rather than a claim. Overflow discipline matches
/// [`WriteTable`] (saturating ends).
#[derive(Debug, Default, Clone)]
pub struct LinearWriteTable {
    slots: HashMap<u64, Vec<(Word, u64)>>,
    /// Number of live (addr, size) grants — slot entries are replicas.
    entries: usize,
}

impl LinearWriteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot_range(addr: Word, size: u64) -> std::ops::RangeInclusive<u64> {
        let first = addr >> SLOT_SHIFT;
        let last = if size == 0 {
            first
        } else {
            (addr.saturating_add(size - 1)) >> SLOT_SHIFT
        };
        first..=last
    }

    /// Grants `[addr, addr+size)`; same clamping and zero-size semantics
    /// as [`WriteTable::grant`].
    pub fn grant(&mut self, addr: Word, size: u64) {
        let size = clamp_size(addr, size);
        if size == 0 {
            return;
        }
        if self.owns_exact(addr, size) {
            return;
        }
        for s in Self::slot_range(addr, size) {
            self.slots.entry(s).or_default().push((addr, size));
        }
        self.entries += 1;
    }

    /// Revokes the exact capability `(addr, size)`; returns whether it
    /// was present.
    pub fn revoke(&mut self, addr: Word, size: u64) -> bool {
        let size = clamp_size(addr, size);
        if size == 0 || !self.owns_exact(addr, size) {
            return false;
        }
        for s in Self::slot_range(addr, size) {
            if let Some(v) = self.slots.get_mut(&s) {
                v.retain(|&(a, l)| !(a == addr && l == size));
                if v.is_empty() {
                    self.slots.remove(&s);
                }
            }
        }
        self.entries -= 1;
        true
    }

    /// Revokes every capability intersecting `[addr, addr+size)`;
    /// returns the number removed.
    pub fn revoke_overlapping(&mut self, addr: Word, size: u64) -> usize {
        if size == 0 {
            return 0;
        }
        let end = addr.saturating_add(size);
        let mut victims: HashSet<(Word, u64)> = HashSet::new();
        for s in Self::slot_range(addr, size) {
            if let Some(v) = self.slots.get(&s) {
                for &(a, l) in v {
                    if a < end && addr < a + l {
                        victims.insert((a, l));
                    }
                }
            }
        }
        for &(a, l) in &victims {
            self.revoke(a, l);
        }
        victims.len()
    }

    /// True if the exact capability `(addr, size)` is present.
    pub fn owns_exact(&self, addr: Word, size: u64) -> bool {
        let size = clamp_size(addr, size);
        if size == 0 {
            return false;
        }
        self.slots
            .get(&(addr >> SLOT_SHIFT))
            .is_some_and(|v| v.iter().any(|&(a, l)| a == addr && l == size))
    }

    /// True if any capability intersects `[addr, addr+len)`.
    pub fn overlaps(&self, addr: Word, len: u64) -> bool {
        if len == 0 {
            return false;
        }
        let end = addr.saturating_add(len);
        Self::slot_range(addr, len).any(|s| {
            self.slots
                .get(&s)
                .is_some_and(|v| v.iter().any(|&(a, l)| a < end && addr < a + l))
        })
    }

    /// True if some single capability covers all of `[addr, addr+len)`.
    pub fn covers(&self, addr: Word, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let Some(end) = addr.checked_add(len) else {
            return false;
        };
        self.slots
            .get(&(addr >> SLOT_SHIFT))
            .is_some_and(|v| v.iter().any(|&(a, l)| a <= addr && end <= a + l))
    }

    /// Number of live capabilities.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no capability is held.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Iterates over live `(addr, size)` grants (deduplicated).
    pub fn iter(&self) -> impl Iterator<Item = (Word, u64)> + '_ {
        let mut seen = HashSet::new();
        self.slots
            .values()
            .flatten()
            .copied()
            .filter(move |e| seen.insert(*e))
    }
}

/// All capabilities of one principal.
#[derive(Debug, Default, Clone)]
pub struct CapSet {
    /// WRITE capabilities.
    pub write: WriteTable,
    /// CALL capabilities (hashed by target address, §5).
    pub call: HashSet<Word>,
    /// REF capabilities (hashed by referred address, §5).
    pub refs: HashSet<(RefTypeId, Word)>,
}

impl CapSet {
    /// Creates an empty capability set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants a capability.
    pub fn grant(&mut self, cap: RawCap) {
        match cap.ctype {
            CapType::Write => self.write.grant(cap.addr, cap.size),
            CapType::Call => {
                self.call.insert(cap.addr);
            }
            CapType::Ref(t) => {
                self.refs.insert((t, cap.addr));
            }
        }
    }

    /// Revokes a capability; returns whether it was present.
    pub fn revoke(&mut self, cap: RawCap) -> bool {
        match cap.ctype {
            CapType::Write => self.write.revoke(cap.addr, cap.size),
            CapType::Call => self.call.remove(&cap.addr),
            CapType::Ref(t) => self.refs.remove(&(t, cap.addr)),
        }
    }

    /// Ownership test. For WRITE this is *coverage*: a single held range
    /// must contain `[addr, addr+size)` (so a capability for a whole slab
    /// object satisfies a check on an interior field).
    pub fn owns(&self, cap: RawCap) -> bool {
        match cap.ctype {
            CapType::Write => self.write.covers(cap.addr, cap.size),
            CapType::Call => self.call.contains(&cap.addr),
            CapType::Ref(t) => self.refs.contains(&(t, cap.addr)),
        }
    }

    /// Total number of capabilities (diagnostics).
    pub fn len(&self) -> usize {
        self.write.len() + self.call.len() + self.refs.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_grant_covers_interior() {
        let mut t = WriteTable::new();
        t.grant(0x1000, 256);
        assert!(t.covers(0x1000, 256));
        assert!(t.covers(0x1010, 16));
        assert!(t.covers(0x10ff, 1));
        assert!(!t.covers(0x1000, 257));
        assert!(!t.covers(0xfff, 2));
        assert!(!t.covers(0x1100, 1));
    }

    #[test]
    fn write_cross_page_range_found_from_any_slot() {
        let mut t = WriteTable::new();
        // A 3-page capability: queries anywhere inside must hit.
        t.grant(0x1800, 0x3000);
        assert!(t.covers(0x1800, 8));
        assert!(t.covers(0x2000, 8));
        assert!(t.covers(0x3000, 8));
        assert!(t.covers(0x47f8, 8));
        assert!(!t.covers(0x4800, 1));
    }

    #[test]
    fn revoke_exact_removes_all_replicas() {
        let mut t = WriteTable::new();
        t.grant(0x1800, 0x3000);
        assert!(t.revoke(0x1800, 0x3000));
        assert!(!t.covers(0x2000, 8));
        assert_eq!(t.len(), 0);
        assert!(!t.revoke(0x1800, 0x3000), "double revoke is false");
    }

    #[test]
    fn grant_is_idempotent() {
        let mut t = WriteTable::new();
        t.grant(0x1000, 64);
        t.grant(0x1000, 64);
        assert_eq!(t.len(), 1);
        assert!(t.revoke(0x1000, 64));
        assert!(!t.covers(0x1000, 1));
    }

    #[test]
    fn revoke_overlapping_strips_partial_ranges() {
        let mut t = WriteTable::new();
        t.grant(0x1000, 64);
        t.grant(0x1040, 64);
        t.grant(0x2000, 64);
        // Freeing [0x1000, 0x1080) kills the first two only.
        assert_eq!(t.revoke_overlapping(0x1000, 0x80), 2);
        assert!(!t.covers(0x1000, 1));
        assert!(!t.covers(0x1040, 1));
        assert!(t.covers(0x2000, 64));
    }

    #[test]
    fn zero_length_checks_are_trivially_true() {
        let t = WriteTable::new();
        assert!(t.covers(0x1234, 0));
    }

    #[test]
    fn zero_size_grant_is_a_noop() {
        // The documented asymmetry: grant(_, 0) records nothing, yet
        // covers(_, 0) stays vacuously true and revoke(_, 0) is false.
        let mut t = WriteTable::new();
        t.grant(0x1000, 0);
        assert!(t.is_empty());
        assert!(!t.overlaps(0x1000, 0));
        assert!(!t.revoke(0x1000, 0));
        assert!(t.covers(0x1000, 0));
        assert_eq!(t.revoke_overlapping(0x1000, 0), 0);
    }

    #[test]
    fn overflow_range_rejected() {
        let mut t = WriteTable::new();
        t.grant(u64::MAX - 8, 8);
        assert!(!t.covers(u64::MAX - 4, 8), "overflowing query is false");
    }

    #[test]
    fn near_max_ranges_saturate_consistently() {
        let mut t = WriteTable::new();
        // Nominal end MAX+8 saturates to [MAX-8, MAX).
        t.grant(u64::MAX - 8, 16);
        assert_eq!(t.len(), 1);
        assert!(t.covers(u64::MAX - 8, 8));
        assert!(t.overlaps(u64::MAX - 1, 1));
        assert!(
            !t.covers(u64::MAX - 8, 9),
            "byte MAX is unreachable under an exclusive end"
        );
        // Revoking under the same nominal size finds the clamped grant.
        assert!(t.revoke(u64::MAX - 8, 16));
        assert!(t.is_empty());
        // A grant starting at MAX can cover nothing and records nothing.
        t.grant(u64::MAX, 4);
        assert!(t.is_empty());
        // revoke_overlapping near the top must not overflow either.
        t.grant(u64::MAX - 64, 64);
        assert_eq!(t.revoke_overlapping(u64::MAX - 8, u64::MAX), 1);
    }

    #[test]
    fn covering_returns_the_hit_interval() {
        let mut t = WriteTable::new();
        t.grant(0x1000, 0x100);
        t.grant(0x1080, 0x10);
        assert_eq!(t.covering(0x1004, 8), Some((0x1000, 0x1100)));
        // A probe inside the small grant may return either cover; both
        // returned intervals must actually cover the probe.
        let (s, e) = t.covering(0x1084, 4).unwrap();
        assert!(s <= 0x1084 && 0x1088 <= e);
        assert_eq!(t.covering(0x1100, 1), None);
        assert_eq!(t.covering(0x1004, 0), None, "zero-length has no interval");
    }

    #[test]
    fn overlapping_grants_resolved_via_prefix_max() {
        // A long interval "hiding" left of many short ones: the prefix
        // maximum must carry its reach across the short entries.
        let mut t = WriteTable::new();
        t.grant(0x1000, 0x10000);
        for i in 0..64u64 {
            t.grant(0x2000 + i * 0x20, 0x10);
        }
        assert!(t.covers(0x9000, 8), "long grant found past short ones");
        assert!(t.covers(0x2008, 8));
        assert!(t.revoke(0x1000, 0x10000));
        assert!(!t.covers(0x9000, 8));
        assert!(t.covers(0x2008, 8));
    }

    #[test]
    fn capset_call_and_ref() {
        let mut s = CapSet::new();
        s.grant(RawCap::call(0xf000));
        s.grant(RawCap::reference(RefTypeId(3), 0x9000));
        assert!(s.owns(RawCap::call(0xf000)));
        assert!(!s.owns(RawCap::call(0xf008)));
        assert!(s.owns(RawCap::reference(RefTypeId(3), 0x9000)));
        assert!(
            !s.owns(RawCap::reference(RefTypeId(4), 0x9000)),
            "REF identity includes the type"
        );
        assert!(s.revoke(RawCap::call(0xf000)));
        assert!(!s.owns(RawCap::call(0xf000)));
    }

    #[test]
    fn ref_does_not_imply_write() {
        let mut s = CapSet::new();
        s.grant(RawCap::reference(RefTypeId(0), 0x9000));
        assert!(
            !s.owns(RawCap::write(0x9000, 8)),
            "REF grants ownership, not write access (§3.2)"
        );
    }

    #[test]
    fn iter_is_deduplicated_and_ordered() {
        let mut t = WriteTable::new();
        t.grant(0x1800, 0x3000);
        t.grant(0x1000, 8);
        t.grant(0x1800, 0x3000);
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all, vec![(0x1000, 8), (0x1800, 0x3000)]);
    }

    #[test]
    fn linear_baseline_agrees_on_basics() {
        let mut t = LinearWriteTable::new();
        t.grant(0x1800, 0x3000);
        t.grant(0x1000, 64);
        assert_eq!(t.len(), 2);
        assert!(t.covers(0x2000, 8));
        assert!(t.covers(0x1010, 8));
        assert!(!t.covers(0x4800, 1));
        assert!(t.overlaps(0x1030, 0x100));
        assert_eq!(t.revoke_overlapping(0x1000, 0x40), 1);
        assert!(t.revoke(0x1800, 0x3000));
        assert!(t.is_empty());
        // Overflow discipline matches the interval table.
        t.grant(u64::MAX - 8, 16);
        assert!(t.covers(u64::MAX - 8, 8));
        assert!(!t.covers(u64::MAX - 4, 8));
    }
}
