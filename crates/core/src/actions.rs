//! Executing annotation actions at wrapper boundaries (§3.3, Figure 3).
//!
//! At each kernel/module crossing the wrapper runs the `pre` actions of
//! the callee's annotation before the call and the `post` actions after
//! it. Direction matters:
//!
//! | action            | pre                       | post                      |
//! |-------------------|---------------------------|---------------------------|
//! | `copy(c)`         | caller→callee (check own) | callee→caller (check own) |
//! | `transfer(c)`     | caller→callee, revoke all | callee→caller, revoke all |
//! | `check(c)`        | caller must own           | (rejected by the parser)  |
//! | `if (e) a`        | run `a` when `e` ≠ 0      | may reference `return`    |
//!
//! The trusted core kernel (`None` context) implicitly owns every
//! capability, so grants *to* the kernel are pure revocations and checks
//! *of* the kernel always pass.

use lxfi_machine::{AddressSpace, Word};

use crate::caps::RawCap;
use crate::compiled::{
    compile_annotations, eval_compiled, CAction, CCapKind, CCapList, CSize, CallValues, CompiledAnn,
};
use crate::iface::{FnDecl, TypeLayouts};
use crate::runtime::{EmittedCap, Runtime};
use crate::shadow::PrincipalCtx;
use crate::stats::GuardKind;
use crate::Violation;

/// Whether actions run before or after the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Before the call: source is the caller, destination the callee.
    Pre,
    /// After the call: source is the callee, destination the caller.
    Post,
}

/// One interposed call: declaration, arguments, and the two principal
/// contexts.
pub struct CallSite<'a> {
    /// The annotated declaration being enforced.
    pub decl: &'a FnDecl,
    /// Argument values.
    pub args: &'a [Word],
    /// Return value (available to `post` actions).
    pub ret: Option<Word>,
    /// Caller context (`None` = core kernel).
    pub caller: PrincipalCtx,
    /// Callee context (`None` = core kernel).
    pub callee: PrincipalCtx,
}

/// Applies the declaration's `pre` or `post` actions for one call.
///
/// Declarations registered through the kernel carry a pre-compiled,
/// name-free action IR (see [`crate::compiled`]); enforcement walks it
/// directly. A declaration that was never compiled (hand-built in a
/// test) is compiled on the fly — same semantics, registration-time
/// cost paid per call.
pub fn apply_actions(
    rt: &mut Runtime,
    mem: &AddressSpace,
    layouts: &TypeLayouts,
    site: &CallSite<'_>,
    dir: Dir,
) -> Result<(), Violation> {
    let owned;
    let compiled: &CompiledAnn = match &site.decl.compiled {
        Some(c) => c,
        None => {
            owned = compile_annotations(&site.decl.ann, &site.decl.params, layouts, rt);
            &owned
        }
    };
    let actions = match dir {
        Dir::Pre => &compiled.pre,
        Dir::Post => &compiled.post,
    };
    let vals = CallValues {
        args: site.args,
        ret: match dir {
            Dir::Pre => None,
            Dir::Post => site.ret,
        },
    };
    for a in actions {
        apply_one(rt, mem, site, dir, vals, a)?;
    }
    Ok(())
}

fn apply_one(
    rt: &mut Runtime,
    mem: &AddressSpace,
    site: &CallSite<'_>,
    dir: Dir,
    vals: CallValues<'_>,
    action: &CAction,
) -> Result<(), Violation> {
    match action {
        CAction::If(cond, inner) => {
            if eval_compiled(cond, vals, rt)? != 0 {
                apply_one(rt, mem, site, dir, vals, inner)?;
            }
            Ok(())
        }
        CAction::Copy(caps) => {
            let resolved = resolve_caplist(rt, mem, vals, caps)?;
            let (src, dst) = endpoints(site, dir);
            for cap in resolved {
                record_action(rt);
                require_owned(rt, src, cap)?;
                if let Some((_, p)) = dst {
                    rt.grant(p, cap);
                }
            }
            Ok(())
        }
        CAction::Transfer(caps) => {
            let resolved = resolve_caplist(rt, mem, vals, caps)?;
            let (src, dst) = endpoints(site, dir);
            for cap in resolved {
                record_action(rt);
                require_owned(rt, src, cap)?;
                // Transfer revokes the capability from ALL principals so no
                // copies survive (§3.3), then grants the destination. WRITE
                // caps with a single holder take the one-splice fast path.
                rt.transfer_cap(cap, dst.map(|(_, p)| p));
            }
            Ok(())
        }
        CAction::Check(caps) => {
            let resolved = resolve_caplist(rt, mem, vals, caps)?;
            // All checks are pre: the caller must own the capability.
            for cap in resolved {
                record_action(rt);
                require_owned(rt, site.caller, cap)?;
            }
            Ok(())
        }
    }
}

fn record_action(rt: &mut Runtime) {
    let c = rt.costs.annotation_action;
    rt.stats.record(GuardKind::AnnotationAction, c);
}

/// `(source, destination)` of a grant for the given direction.
fn endpoints(site: &CallSite<'_>, dir: Dir) -> (PrincipalCtx, PrincipalCtx) {
    match dir {
        Dir::Pre => (site.caller, site.callee),
        Dir::Post => (site.callee, site.caller),
    }
}

fn require_owned(rt: &Runtime, ctx: PrincipalCtx, cap: RawCap) -> Result<(), Violation> {
    if rt.ctx_owns(ctx, cap) {
        return Ok(());
    }
    let (_, p) = ctx.expect("kernel owns everything, so ctx is a module");
    Err(match cap.ctype {
        crate::caps::CapType::Write => Violation::MissingWrite {
            principal: p,
            addr: cap.addr,
            len: cap.size,
        },
        crate::caps::CapType::Call => Violation::MissingCall {
            principal: p,
            target: cap.addr,
        },
        crate::caps::CapType::Ref(t) => Violation::MissingRef {
            principal: p,
            rtype: rt.ref_type_name(t),
            value: cap.addr,
        },
    })
}

/// Resolves a compiled caplist to concrete capabilities: evaluates
/// expressions and expands capability iterators. REF types and iterator
/// names were interned at compile time, so no string work happens here.
fn resolve_caplist(
    rt: &mut Runtime,
    mem: &AddressSpace,
    vals: CallValues<'_>,
    caps: &CCapList,
) -> Result<Vec<RawCap>, Violation> {
    match caps {
        CCapList::Inline { kind, ptr, size } => {
            let addr = eval_compiled(ptr, vals, rt)? as u64;
            let cap = match kind {
                CCapKind::Write => {
                    let sz = match size {
                        CSize::Expr(e) => eval_compiled(e, vals, rt)? as u64,
                        CSize::Sizeof(s) => *s,
                        CSize::Unresolved(why) => {
                            return Err(Violation::BadExpression { why: why.clone() })
                        }
                    };
                    RawCap::write(addr, sz)
                }
                CCapKind::Call => RawCap::call(addr),
                CCapKind::Ref(t) => RawCap::reference(*t, addr),
            };
            Ok(vec![cap])
        }
        CCapList::Iter { func, arg } => {
            let v = eval_compiled(arg, vals, rt)? as u64;
            let emitted = rt.run_iterator_id(*func, mem, v)?;
            Ok(emitted
                .into_iter()
                .map(|e| match e {
                    EmittedCap::Write { addr, size } => RawCap::write(addr, size),
                    EmittedCap::Call { target } => RawCap::call(target),
                    EmittedCap::Ref { rtype, value } => RawCap::reference(rtype, value),
                })
                .collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::Param;
    use crate::principal::ModuleId;
    use crate::runtime::ThreadId;
    use lxfi_annotations::parse_fn_annotations;

    fn setup() -> (Runtime, AddressSpace, TypeLayouts, ModuleId) {
        let mut rt = Runtime::new();
        let m = rt.register_module("e1000");
        rt.register_thread(ThreadId(0), 0xffff_9000_0000_0000, 0x4000);
        let mem = AddressSpace::new();
        mem.map_range(0x5000, 0x2000);
        let mut layouts = TypeLayouts::new();
        layouts.define("spinlock_t", 8);
        layouts.define("sk_buff", 232);
        (rt, mem, layouts, m)
    }

    #[test]
    fn kernel_to_module_pre_copy_grants_ref() {
        let (mut rt, mem, layouts, m) = setup();
        let p = rt.principal_for_name(m, 0x5000);
        let ann = parse_fn_annotations("principal(pcidev) pre(copy(ref(struct pci_dev), pcidev))")
            .unwrap();
        let decl = FnDecl::new("probe", vec![Param::ptr("pcidev", "pci_dev")], ann);
        let site = CallSite {
            decl: &decl,
            args: &[0x5000],
            ret: None,
            caller: None, // kernel
            callee: Some((m, p)),
        };
        apply_actions(&mut rt, &mem, &layouts, &site, Dir::Pre).unwrap();
        let t = rt.ref_type("struct pci_dev");
        assert!(rt.owns(p, RawCap::reference(t, 0x5000)));
    }

    #[test]
    fn module_to_kernel_check_requires_ownership() {
        let (mut rt, mem, layouts, m) = setup();
        let p = rt.principal_for_name(m, 0x5000);
        let ann = parse_fn_annotations("pre(check(ref(struct pci_dev), pcidev))").unwrap();
        let decl = FnDecl::new(
            "pci_enable_device",
            vec![Param::ptr("pcidev", "pci_dev")],
            ann,
        );
        let site = CallSite {
            decl: &decl,
            args: &[0x5000],
            ret: None,
            caller: Some((m, p)),
            callee: None,
        };
        let err = apply_actions(&mut rt, &mem, &layouts, &site, Dir::Pre).unwrap_err();
        assert!(matches!(err, Violation::MissingRef { .. }));
        let t = rt.ref_type("struct pci_dev");
        rt.grant(p, RawCap::reference(t, 0x5000));
        apply_actions(&mut rt, &mem, &layouts, &site, Dir::Pre).unwrap();
    }

    #[test]
    fn post_transfer_grants_allocation_to_module() {
        // kmalloc: post(if (return != 0) transfer(write, return, size)).
        let (mut rt, mem, layouts, m) = setup();
        let p = rt.principal_for_name(m, 0x5000);
        let ann =
            parse_fn_annotations("post(if (return != 0) transfer(write, return, size))").unwrap();
        let decl = FnDecl::new("kmalloc", vec![Param::scalar("size")], ann);
        let site = CallSite {
            decl: &decl,
            args: &[128],
            ret: Some(0x6000),
            caller: Some((m, p)),
            callee: None,
        };
        apply_actions(&mut rt, &mem, &layouts, &site, Dir::Post).unwrap();
        assert!(rt.owns(p, RawCap::write(0x6000, 128)));
        assert!(!rt.owns(p, RawCap::write(0x6000, 129)));

        // A failed allocation grants nothing.
        let site2 = CallSite {
            ret: Some(0),
            ..site
        };
        let before = rt.cap_count(p);
        apply_actions(&mut rt, &mem, &layouts, &site2, Dir::Post).unwrap();
        assert_eq!(rt.cap_count(p), before);
    }

    #[test]
    fn pre_transfer_strips_all_copies() {
        // netif_rx: pre(transfer(write, skb, len)) — after handing the
        // packet to the kernel the module must not touch it.
        let (mut rt, mem, layouts, m) = setup();
        let p = rt.principal_for_name(m, 0x5000);
        let q = rt.principal_for_name(m, 0x5100);
        let cap = RawCap::write(0x6000, 64);
        rt.grant(p, cap);
        rt.grant(q, cap); // another principal got a copy
        let ann = parse_fn_annotations("pre(transfer(write, skb, 64))").unwrap();
        let decl = FnDecl::new("netif_rx", vec![Param::ptr("skb", "sk_buff")], ann);
        let site = CallSite {
            decl: &decl,
            args: &[0x6000],
            ret: None,
            caller: Some((m, p)),
            callee: None,
        };
        apply_actions(&mut rt, &mem, &layouts, &site, Dir::Pre).unwrap();
        assert!(!rt.owns(p, cap), "transferred away from caller");
        assert!(!rt.owns(q, cap), "revoked from every principal (§3.3)");
    }

    #[test]
    fn transfer_requires_source_ownership() {
        let (mut rt, mem, layouts, m) = setup();
        let p = rt.principal_for_name(m, 0x5000);
        let ann = parse_fn_annotations("pre(transfer(write, skb, 64))").unwrap();
        let decl = FnDecl::new("netif_rx", vec![Param::ptr("skb", "sk_buff")], ann);
        let site = CallSite {
            decl: &decl,
            args: &[0x6000],
            ret: None,
            caller: Some((m, p)),
            callee: None,
        };
        let err = apply_actions(&mut rt, &mem, &layouts, &site, Dir::Pre).unwrap_err();
        assert!(
            matches!(err, Violation::MissingWrite { .. }),
            "a module cannot transfer capabilities it does not own"
        );
    }

    #[test]
    fn default_size_uses_pointee_layout() {
        // spin_lock_init(lock): pre(copy(write, lock)) with implicit
        // sizeof(spinlock_t).
        let (mut rt, mem, layouts, m) = setup();
        let p = rt.principal_for_name(m, 0x5000);
        let ann = parse_fn_annotations("pre(check(write, lock))").unwrap();
        let decl = FnDecl::new(
            "spin_lock_init",
            vec![Param::ptr("lock", "spinlock_t")],
            ann,
        );
        rt.grant(p, RawCap::write(0x7000, 8));
        let ok = CallSite {
            decl: &decl,
            args: &[0x7000],
            ret: None,
            caller: Some((m, p)),
            callee: None,
        };
        apply_actions(&mut rt, &mem, &layouts, &ok, Dir::Pre).unwrap();
        // The uid-field attack from §1: passing a pointer the module
        // cannot write is rejected.
        let attack = CallSite {
            decl: &decl,
            args: &[0x7100],
            ret: None,
            caller: Some((m, p)),
            callee: None,
        };
        let err = apply_actions(&mut rt, &mem, &layouts, &attack, Dir::Pre).unwrap_err();
        assert!(matches!(err, Violation::MissingWrite { .. }));
    }

    #[test]
    fn iterator_expansion() {
        let (mut rt, mem, layouts, m) = setup();
        let p = rt.principal_for_name(m, 0x5000);
        // A two-field "sk_buff": data pointer at +0, length at +8.
        mem.map_range(0x8000, 0x1000);
        mem.write_word(0x8000, 0x8800).unwrap(); // skb->data
        mem.write_word(0x8008, 96).unwrap(); // skb->len
        rt.register_iterator(
            "skb_caps",
            Box::new(|mem, skb, out| {
                out.push(EmittedCap::Write {
                    addr: skb,
                    size: 16,
                });
                let data = mem.read_word(skb).map_err(|e| e.to_string())?;
                let len = mem.read_word(skb + 8).map_err(|e| e.to_string())?;
                out.push(EmittedCap::Write {
                    addr: data,
                    size: len,
                });
                Ok(())
            }),
        );
        let ann = parse_fn_annotations("pre(transfer(skb_caps(skb)))").unwrap();
        let decl = FnDecl::new("ndo_start_xmit", vec![Param::ptr("skb", "sk_buff")], ann);
        rt.grant(p, RawCap::write(0x8000, 16));
        rt.grant(p, RawCap::write(0x8800, 96));
        let site = CallSite {
            decl: &decl,
            args: &[0x8000],
            ret: None,
            caller: Some((m, p)),
            callee: None,
        };
        apply_actions(&mut rt, &mem, &layouts, &site, Dir::Pre).unwrap();
        assert!(!rt.owns(p, RawCap::write(0x8000, 16)));
        assert!(!rt.owns(p, RawCap::write(0x8800, 96)));
        // Two caps → two annotation actions recorded.
        assert_eq!(rt.stats.count(GuardKind::AnnotationAction), 2);
    }

    #[test]
    fn unknown_iterator_is_a_violation() {
        let (mut rt, mem, layouts, m) = setup();
        let p = rt.principal_for_name(m, 0x5000);
        let ann = parse_fn_annotations("pre(transfer(mystery_caps(skb)))").unwrap();
        let decl = FnDecl::new("f", vec![Param::ptr("skb", "sk_buff")], ann);
        let site = CallSite {
            decl: &decl,
            args: &[0x8000],
            ret: None,
            caller: Some((m, p)),
            callee: None,
        };
        let err = apply_actions(&mut rt, &mem, &layouts, &site, Dir::Pre).unwrap_err();
        assert!(matches!(err, Violation::UnknownIterator { .. }));
    }

    #[test]
    fn conditional_transfer_back_on_error_return() {
        // Figure 4's probe: post(if (return < 0) transfer(ref(...), pcidev))
        // gives the device back to the kernel when probing fails.
        let (mut rt, mem, layouts, m) = setup();
        let p = rt.principal_for_name(m, 0x5000);
        let t = rt.ref_type("struct pci_dev");
        rt.grant(p, RawCap::reference(t, 0x5000));
        let ann =
            parse_fn_annotations("post(if (return < 0) transfer(ref(struct pci_dev), pcidev))")
                .unwrap();
        let decl = FnDecl::new("probe", vec![Param::ptr("pcidev", "pci_dev")], ann);
        // Success: keeps the REF.
        let ok = CallSite {
            decl: &decl,
            args: &[0x5000],
            ret: Some(0),
            caller: None,
            callee: Some((m, p)),
        };
        apply_actions(&mut rt, &mem, &layouts, &ok, Dir::Post).unwrap();
        assert!(rt.owns(p, RawCap::reference(t, 0x5000)));
        // Failure: REF transferred back (revoked from the module).
        let fail = CallSite {
            ret: Some((-12i64) as u64),
            ..ok
        };
        apply_actions(&mut rt, &mem, &layouts, &fail, Dir::Post).unwrap();
        assert!(!rt.owns(p, RawCap::reference(t, 0x5000)));
    }
}
