//! Interface declarations: annotated function prototypes and type layouts.
//!
//! A [`FnDecl`] is the runtime's view of one annotated prototype — either
//! an exported kernel function, a module function, or a function-pointer
//! type. The annotation's expressions reference parameters by name, and a
//! caplist without an explicit size defaults to `sizeof(*ptr)`, resolved
//! against the parameter's declared pointee type through [`TypeLayouts`].

use std::collections::HashMap;
use std::sync::Arc;

use lxfi_annotations::{annotation_hash, FnAnnotations};

/// A declared parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name, referenced by annotation expressions.
    pub name: String,
    /// Pointee type name when the parameter is a pointer (`sk_buff`,
    /// `struct pci_dev`, ...); `None` for scalars. Used only to resolve
    /// default capability sizes.
    pub pointee: Option<String>,
}

impl Param {
    /// A scalar parameter.
    pub fn scalar(name: &str) -> Self {
        Param {
            name: name.into(),
            pointee: None,
        }
    }

    /// A pointer parameter with the given pointee type name.
    pub fn ptr(name: &str, pointee: &str) -> Self {
        Param {
            name: name.into(),
            pointee: Some(pointee.into()),
        }
    }
}

/// An annotated function or function-pointer-type declaration.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Symbol or type name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// The annotation set (kept for canonical printing and hashing).
    pub ann: FnAnnotations,
    /// Cached annotation hash (`ahash`, §4.1).
    pub ahash: u64,
    /// Name-free enforcement IR, filled by [`FnDecl::compile`]. Shared so
    /// cloning a declaration (wrappers clone per call site) costs one
    /// reference count. `None` falls back to compiling at enforcement
    /// time — correct but slow; registration paths always compile.
    pub compiled: Option<Arc<crate::compiled::CompiledAnn>>,
}

impl FnDecl {
    /// Creates a declaration and caches its annotation hash.
    pub fn new(name: impl Into<String>, params: Vec<Param>, ann: FnAnnotations) -> Self {
        let ahash = annotation_hash(&ann);
        FnDecl {
            name: name.into(),
            params,
            ann,
            ahash,
            compiled: None,
        }
    }

    /// Compiles the annotation set into the name-free IR (see
    /// [`crate::compiled`]). Call once at registration, after type
    /// layouts are known; constants and iterators referenced by the
    /// annotations may still be registered later.
    pub fn compile(&mut self, rt: &mut crate::runtime::Runtime, layouts: &TypeLayouts) {
        self.compiled = Some(Arc::new(crate::compiled::compile_annotations(
            &self.ann,
            &self.params,
            layouts,
            rt,
        )));
    }

    /// Resolves the default capability size for parameter `name`:
    /// `sizeof(*ptr)` via the type-layout registry.
    pub fn default_size_of(&self, name: &str, layouts: &TypeLayouts) -> Option<u64> {
        param_pointee_size(&self.params, name, layouts)
    }
}

/// `sizeof(*name)` for a parameter list: the single definition of the
/// default-size rule, shared by [`FnDecl::default_size_of`] and the
/// annotation compiler.
pub(crate) fn param_pointee_size(
    params: &[Param],
    name: &str,
    layouts: &TypeLayouts,
) -> Option<u64> {
    let p = params.iter().find(|p| p.name == name)?;
    let ty = p.pointee.as_deref()?;
    layouts.size_of(ty)
}

/// Registry of simulated struct sizes (the kernel's type layouts).
#[derive(Debug, Default, Clone)]
pub struct TypeLayouts {
    sizes: HashMap<String, u64>,
}

impl TypeLayouts {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or updates) a type's size.
    pub fn define(&mut self, name: &str, size: u64) {
        self.sizes.insert(name.to_string(), size);
    }

    /// Looks up a type's size.
    pub fn size_of(&self, name: &str) -> Option<u64> {
        self.sizes.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lxfi_annotations::parse_fn_annotations;

    #[test]
    fn default_size_resolution() {
        let mut layouts = TypeLayouts::new();
        layouts.define("spinlock_t", 8);
        let ann = parse_fn_annotations("pre(check(write, lock))").unwrap();
        let d = FnDecl::new(
            "spin_lock_init",
            vec![Param::ptr("lock", "spinlock_t")],
            ann,
        );
        assert_eq!(d.default_size_of("lock", &layouts), Some(8));
        assert_eq!(d.default_size_of("nosuch", &layouts), None);
    }

    #[test]
    fn scalar_params_have_no_default_size() {
        let layouts = TypeLayouts::new();
        let d = FnDecl::new(
            "kmalloc",
            vec![Param::scalar("size")],
            FnAnnotations::empty(),
        );
        assert_eq!(d.default_size_of("size", &layouts), None);
    }

    #[test]
    fn hash_is_cached_consistently() {
        let ann = parse_fn_annotations("pre(check(call, f))").unwrap();
        let d = FnDecl::new("f", vec![Param::scalar("f")], ann.clone());
        assert_eq!(d.ahash, lxfi_annotations::annotation_hash(&ann));
    }
}
