//! Compiled annotations: name-free enforcement IR.
//!
//! Parsed annotations ([`lxfi_annotations::FnAnnotations`]) reference
//! parameters, kernel constants, capability iterators, and REF types *by
//! string name*. Resolving those names at every wrapper crossing put
//! `String` hashing and comparison on the guard hot path. This module
//! compiles an annotation set once, at registration time, into an IR in
//! which every name is a dense index:
//!
//! - parameter idents → argument positions ([`CExpr::Param`]);
//! - kernel-constant idents → [`ConstId`] slots interned in the
//!   [`Runtime`] (definable after compilation — a slot left undefined
//!   reproduces the unknown-identifier error at evaluation time);
//! - iterator names → [`IteratorId`] slots (same late-binding rule);
//! - `ref(type-name)` → [`RefTypeId`];
//! - a missing WRITE size → the pointee's `sizeof`, resolved against
//!   [`TypeLayouts`] at compile time.
//!
//! Enforcement (`crate::actions`) walks this IR only; the original AST is
//! kept solely for canonical printing and hashing.

use lxfi_annotations::{
    Action, BinExprOp, CapList, CapTypeExpr, Expr, FnAnnotations, PrincipalExpr,
};
use lxfi_machine::Word;

use crate::caps::RefTypeId;
use crate::iface::{Param, TypeLayouts};
use crate::runtime::{ConstId, IteratorId, Runtime};
use crate::Violation;

/// A compiled expression: idents resolved to argument positions or
/// constant slots.
#[derive(Debug, Clone)]
pub enum CExpr {
    /// Integer literal.
    Int(i64),
    /// The function's return value (`post` actions only).
    Return,
    /// The argument at this position.
    Param(u32),
    /// An interned kernel constant.
    Const(ConstId),
    /// Unary negation.
    Neg(Box<CExpr>),
    /// Logical not.
    Not(Box<CExpr>),
    /// Binary operation.
    Bin(BinExprOp, Box<CExpr>, Box<CExpr>),
}

/// The size of an inline WRITE caplist.
#[derive(Debug, Clone)]
pub enum CSize {
    /// An explicit size expression.
    Expr(CExpr),
    /// `sizeof(*ptr)`, resolved at compile time.
    Sizeof(u64),
    /// Unresolvable; enforcing the action reports this message (matches
    /// the pre-compilation behavior of failing at enforcement time).
    Unresolved(String),
}

/// The capability kind of an inline caplist.
#[derive(Debug, Clone, Copy)]
pub enum CCapKind {
    /// WRITE over a byte range.
    Write,
    /// CALL of a code address.
    Call,
    /// REF of an interned type.
    Ref(RefTypeId),
}

/// A compiled caplist.
#[derive(Debug, Clone)]
pub enum CCapList {
    /// One inline capability.
    Inline {
        /// Capability kind.
        kind: CCapKind,
        /// Address expression.
        ptr: CExpr,
        /// Size (WRITE only).
        size: CSize,
    },
    /// A capability iterator applied to an argument expression.
    Iter {
        /// Interned iterator.
        func: IteratorId,
        /// Iterator argument.
        arg: CExpr,
    },
}

/// A compiled action.
#[derive(Debug, Clone)]
pub enum CAction {
    /// Grant a copy to the destination (source keeps its copy).
    Copy(CCapList),
    /// Move to the destination, revoking every other copy (§3.3).
    Transfer(CCapList),
    /// Require the caller to own the capability.
    Check(CCapList),
    /// Run the inner action when the condition is non-zero.
    If(CExpr, Box<CAction>),
}

/// A compiled `principal(...)` clause.
#[derive(Debug, Clone)]
pub enum CPrincipal {
    /// The module's shared principal.
    Shared,
    /// The module's global principal.
    Global,
    /// The instance principal named by the argument at this position.
    Arg(u32),
    /// `principal(name)` where `name` is not a parameter: selecting a
    /// principal reports this error (matching pre-compilation behavior).
    UnknownArg(String),
}

/// A fully compiled annotation set.
#[derive(Debug, Clone, Default)]
pub struct CompiledAnn {
    /// Compiled `principal(...)` clause, if any.
    pub principal: Option<CPrincipal>,
    /// Compiled `pre` actions.
    pub pre: Vec<CAction>,
    /// Compiled `post` actions.
    pub post: Vec<CAction>,
}

fn compile_expr(e: &Expr, params: &[Param], rt: &mut Runtime) -> CExpr {
    match e {
        Expr::Int(v) => CExpr::Int(*v),
        Expr::Return => CExpr::Return,
        Expr::Ident(name) => match params.iter().position(|p| &p.name == name) {
            Some(i) => CExpr::Param(i as u32),
            None => CExpr::Const(rt.const_id(name)),
        },
        Expr::Neg(inner) => CExpr::Neg(Box::new(compile_expr(inner, params, rt))),
        Expr::Not(inner) => CExpr::Not(Box::new(compile_expr(inner, params, rt))),
        Expr::Bin(op, l, r) => CExpr::Bin(
            *op,
            Box::new(compile_expr(l, params, rt)),
            Box::new(compile_expr(r, params, rt)),
        ),
    }
}

fn compile_default_size(ptr: &Expr, params: &[Param], layouts: &TypeLayouts) -> CSize {
    let Expr::Ident(name) = ptr else {
        return CSize::Unresolved(format!("cannot infer sizeof(*({ptr})): not a parameter"));
    };
    match crate::iface::param_pointee_size(params, name, layouts) {
        Some(s) => CSize::Sizeof(s),
        None => CSize::Unresolved(format!("no pointee type known for parameter `{name}`")),
    }
}

fn compile_caplist(
    caps: &CapList,
    params: &[Param],
    layouts: &TypeLayouts,
    rt: &mut Runtime,
) -> CCapList {
    match caps {
        CapList::Inline { ctype, ptr, size } => {
            let kind = match ctype {
                CapTypeExpr::Write => CCapKind::Write,
                CapTypeExpr::Call => CCapKind::Call,
                CapTypeExpr::Ref(tname) => CCapKind::Ref(rt.ref_type(tname)),
            };
            let csize = match (ctype, size) {
                (CapTypeExpr::Write, Some(e)) => CSize::Expr(compile_expr(e, params, rt)),
                (CapTypeExpr::Write, None) => compile_default_size(ptr, params, layouts),
                // CALL and REF capabilities are sizeless.
                _ => CSize::Sizeof(0),
            };
            CCapList::Inline {
                kind,
                ptr: compile_expr(ptr, params, rt),
                size: csize,
            }
        }
        CapList::Iter { func, arg } => CCapList::Iter {
            func: rt.iterator_id(func),
            arg: compile_expr(arg, params, rt),
        },
    }
}

fn compile_action(
    a: &Action,
    params: &[Param],
    layouts: &TypeLayouts,
    rt: &mut Runtime,
) -> CAction {
    match a {
        Action::Copy(c) => CAction::Copy(compile_caplist(c, params, layouts, rt)),
        Action::Transfer(c) => CAction::Transfer(compile_caplist(c, params, layouts, rt)),
        Action::Check(c) => CAction::Check(compile_caplist(c, params, layouts, rt)),
        Action::If(cond, inner) => CAction::If(
            compile_expr(cond, params, rt),
            Box::new(compile_action(inner, params, layouts, rt)),
        ),
    }
}

/// Compiles an annotation set against its declaration's parameters.
///
/// Idempotent and order-independent with respect to constant / iterator
/// registration: unknown names intern empty slots that later
/// `define_const` / `register_iterator` calls fill in.
pub fn compile_annotations(
    ann: &FnAnnotations,
    params: &[Param],
    layouts: &TypeLayouts,
    rt: &mut Runtime,
) -> CompiledAnn {
    let principal = ann.principal.as_ref().map(|p| match p {
        PrincipalExpr::Shared => CPrincipal::Shared,
        PrincipalExpr::Global => CPrincipal::Global,
        PrincipalExpr::Arg(name) => match params.iter().position(|q| &q.name == name) {
            Some(i) => CPrincipal::Arg(i as u32),
            None => CPrincipal::UnknownArg(name.clone()),
        },
    });
    CompiledAnn {
        principal,
        pre: ann
            .pre
            .iter()
            .map(|a| compile_action(a, params, layouts, rt))
            .collect(),
        post: ann
            .post
            .iter()
            .map(|a| compile_action(a, params, layouts, rt))
            .collect(),
    }
}

/// The values a compiled expression reads at one call.
#[derive(Debug, Clone, Copy)]
pub struct CallValues<'a> {
    /// Argument values, by position.
    pub args: &'a [Word],
    /// Return value (`post` actions only).
    pub ret: Option<Word>,
}

/// Evaluates a compiled expression; booleans are 0/1. Semantics mirror
/// `lxfi_annotations::eval_expr` (wrapping signed arithmetic,
/// short-circuit `&&`/`||`, checked division).
pub fn eval_compiled(e: &CExpr, vals: CallValues<'_>, rt: &Runtime) -> Result<i64, Violation> {
    Ok(match e {
        CExpr::Int(v) => *v,
        CExpr::Return => vals.ret.ok_or_else(|| Violation::BadExpression {
            why: "`return` referenced in a pre action".into(),
        })? as i64,
        CExpr::Param(i) => {
            vals.args
                .get(*i as usize)
                .copied()
                .ok_or_else(|| Violation::BadExpression {
                    why: format!("argument {i} not provided"),
                })? as i64
        }
        CExpr::Const(id) => rt
            .const_value(*id)
            .ok_or_else(|| Violation::BadExpression {
                why: format!("unknown identifier `{}` in annotation", rt.const_name(*id)),
            })?,
        CExpr::Neg(inner) => eval_compiled(inner, vals, rt)?.wrapping_neg(),
        CExpr::Not(inner) => i64::from(eval_compiled(inner, vals, rt)? == 0),
        CExpr::Bin(op, l, r) => {
            let lv = eval_compiled(l, vals, rt)?;
            match op {
                BinExprOp::And => {
                    return Ok(if lv != 0 {
                        i64::from(eval_compiled(r, vals, rt)? != 0)
                    } else {
                        0
                    })
                }
                BinExprOp::Or => {
                    return Ok(if lv != 0 {
                        1
                    } else {
                        i64::from(eval_compiled(r, vals, rt)? != 0)
                    })
                }
                _ => {}
            }
            let rv = eval_compiled(r, vals, rt)?;
            match op {
                BinExprOp::Add => lv.wrapping_add(rv),
                BinExprOp::Sub => lv.wrapping_sub(rv),
                BinExprOp::Mul => lv.wrapping_mul(rv),
                BinExprOp::Div => lv.checked_div(rv).ok_or(Violation::BadExpression {
                    why: "division by zero in annotation".into(),
                })?,
                BinExprOp::Eq => i64::from(lv == rv),
                BinExprOp::Ne => i64::from(lv != rv),
                BinExprOp::Lt => i64::from(lv < rv),
                BinExprOp::Le => i64::from(lv <= rv),
                BinExprOp::Gt => i64::from(lv > rv),
                BinExprOp::Ge => i64::from(lv >= rv),
                BinExprOp::And | BinExprOp::Or => unreachable!("handled above"),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lxfi_annotations::parse_fn_annotations;

    #[test]
    fn idents_resolve_params_before_consts() {
        let mut rt = Runtime::new();
        rt.define_const("len", 999); // shadowed by the parameter below
        let ann = parse_fn_annotations("pre(if (len > 32) check(write, skb, len))").unwrap();
        let params = vec![Param::ptr("skb", "sk_buff"), Param::scalar("len")];
        let c = compile_annotations(&ann, &params, &TypeLayouts::new(), &mut rt);
        let CAction::If(cond, _) = &c.pre[0] else {
            panic!("expected if");
        };
        let vals = CallValues {
            args: &[0x1000, 64],
            ret: None,
        };
        assert_eq!(eval_compiled(cond, vals, &rt).unwrap(), 1);
    }

    #[test]
    fn consts_may_be_defined_after_compilation() {
        let mut rt = Runtime::new();
        let ann = parse_fn_annotations("post(if (return == -NETDEV_BUSY) transfer(write, p, 8))")
            .unwrap();
        let params = vec![Param::ptr("p", "sk_buff")];
        let c = compile_annotations(&ann, &params, &TypeLayouts::new(), &mut rt);
        let CAction::If(cond, _) = &c.post[0] else {
            panic!("expected if");
        };
        let vals = CallValues {
            args: &[0],
            ret: Some((-16i64) as u64),
        };
        // Undefined constant: evaluation reports the unknown identifier.
        let err = eval_compiled(cond, vals, &rt).unwrap_err();
        assert!(matches!(err, Violation::BadExpression { .. }));
        // Late definition fills the interned slot.
        rt.define_const("NETDEV_BUSY", 16);
        assert_eq!(eval_compiled(cond, vals, &rt).unwrap(), 1);
    }

    #[test]
    fn sizeof_defaults_resolve_at_compile_time() {
        let mut rt = Runtime::new();
        let mut layouts = TypeLayouts::new();
        layouts.define("spinlock_t", 8);
        let ann = parse_fn_annotations("pre(check(write, lock))").unwrap();
        let params = vec![Param::ptr("lock", "spinlock_t")];
        let c = compile_annotations(&ann, &params, &layouts, &mut rt);
        let CAction::Check(CCapList::Inline { size, .. }) = &c.pre[0] else {
            panic!("expected inline check");
        };
        assert!(matches!(size, CSize::Sizeof(8)));
    }

    #[test]
    fn return_in_pre_is_an_error() {
        let rt = Runtime::new();
        let vals = CallValues {
            args: &[],
            ret: None,
        };
        let err = eval_compiled(&CExpr::Return, vals, &rt).unwrap_err();
        assert!(matches!(err, Violation::BadExpression { .. }));
    }
}
