//! Writer-set tracking (§4.1, §5) — the indirect-call fast path.
//!
//! Before the core kernel invokes a function pointer, LXFI must know
//! whether any module principal could have written the pointer slot since
//! it was last zeroed. The common case is "no" (the slot was only ever
//! written by the kernel), and must be cheap.
//!
//! The structure mirrors the paper's: a page-table-like map whose leaves
//! are bitmaps, one bit per 64-byte granule, meaning "some principal has
//! been *granted WRITE* over this granule since it was last zeroed". A
//! clear bit proves the writer set is empty (no false negatives); a set
//! bit sends the check down the slow path, which consults the reverse
//! writer index ([`crate::writer_index`]) for who actually holds WRITE
//! coverage — set bits for granules nobody can write anymore are benign
//! false positives. (The paper's slow path walked the global principal
//! list instead; that traversal survives as the benchmarked
//! `LinearWriterIndex` baseline.)

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use lxfi_machine::Word;

const GRANULE_SHIFT: u32 = 6; // 64-byte granules
const PAGE_SHIFT: u32 = 12;
const GRANULES_PER_PAGE: u64 = 1 << (PAGE_SHIFT - GRANULE_SHIFT); // 64
const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// The "maybe written by a module" bitmap.
#[derive(Debug, Default)]
pub struct WriterMap {
    pages: HashMap<u64, u64>,
}

impl WriterMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    fn split(addr: Word) -> (u64, u64) {
        let page = addr >> PAGE_SHIFT;
        let granule = (addr >> GRANULE_SHIFT) & (GRANULES_PER_PAGE - 1);
        (page, granule)
    }

    /// Marks `[addr, addr+len)` as possibly module-written (called on
    /// every WRITE-capability grant). The end saturates at `Word::MAX`
    /// (exclusive), matching the capability tables' overflow discipline;
    /// a mark starting at `Word::MAX` covers nothing. Returns how many
    /// granules flipped from clear to set (the stripes keep a lock-free
    /// marked-granule census from these deltas).
    pub fn mark(&mut self, addr: Word, len: u64) -> u64 {
        let len = len.min(Word::MAX - addr);
        if len == 0 {
            return 0;
        }
        let mut newly_set = 0;
        let mut g = addr >> GRANULE_SHIFT;
        let last = (addr + (len - 1)) >> GRANULE_SHIFT;
        while g <= last {
            let page = g >> (PAGE_SHIFT - GRANULE_SHIFT);
            let bit = g & (GRANULES_PER_PAGE - 1);
            let bm = self.pages.entry(page).or_insert(0);
            if *bm & (1u64 << bit) == 0 {
                *bm |= 1u64 << bit;
                newly_set += 1;
            }
            g += 1;
        }
        newly_set
    }

    /// True if some module may have written the granule containing `addr`
    /// since it was last cleared.
    pub fn maybe_written(&self, addr: Word) -> bool {
        let (page, granule) = Self::split(addr);
        self.pages
            .get(&page)
            .is_some_and(|bm| bm & (1u64 << granule) != 0)
    }

    /// Clears granules fully contained in `[addr, addr+len)` for which
    /// `still_writable` is false. Called when memory is zeroed; the
    /// predicate keeps bits set for granules some principal can still
    /// write (otherwise clearing would introduce a false negative).
    /// Returns how many set granules were cleared.
    pub fn clear_zeroed(
        &mut self,
        addr: Word,
        len: u64,
        mut still_writable: impl FnMut(Word) -> bool,
    ) -> u64 {
        if len == 0 {
            return 0;
        }
        // Only granules *fully* inside the zeroed range may be cleared.
        // The zeroed end saturates like every other range end.
        let first = addr.div_ceil(1 << GRANULE_SHIFT);
        let last = addr.saturating_add(len) >> GRANULE_SHIFT; // exclusive
        let mut cleared = 0;
        let mut g = first;
        while g < last {
            let base = g << GRANULE_SHIFT;
            if !still_writable(base) {
                let page = g >> (PAGE_SHIFT - GRANULE_SHIFT);
                let bit = g & (GRANULES_PER_PAGE - 1);
                if let Some(bm) = self.pages.get_mut(&page) {
                    if *bm & (1u64 << bit) != 0 {
                        *bm &= !(1u64 << bit);
                        cleared += 1;
                    }
                    if *bm == 0 {
                        self.pages.remove(&page);
                    }
                }
            }
            g += 1;
        }
        cleared
    }

    /// Number of pages with any marked granule (diagnostics).
    pub fn dirty_pages(&self) -> usize {
        self.pages.len()
    }

    /// Total marked granules (diagnostics; linear in dirty pages).
    pub fn marked_granules(&self) -> u64 {
        self.pages
            .values()
            .map(|bm| u64::from(bm.count_ones()))
            .sum()
    }
}

/// Snapshot of a stripe's generation counters, taken when a zero-note is
/// deferred. A drain later applies the note only if both generations are
/// unchanged: no mark and no write-coverage revocation touched the stripe
/// in between, so the deferred clear is exactly the clear an immediate
/// `note_zeroed` would have performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroNoteToken {
    stripe: usize,
    mark_gen: u64,
    revoke_gen: u64,
}

struct Stripe {
    /// Lock-free census of set granule bits resident in this stripe.
    /// Zero means provably all-clean: `maybe_written`/`note_zeroed` can
    /// answer without touching the map lock at all.
    marked: AtomicU64,
    /// Bumped on every `mark` touching the stripe (under the map lock).
    mark_gen: AtomicU64,
    /// Bumped (lock-free) before any write-coverage removal overlapping
    /// the stripe. Invalidates deferred zero-notes whose range may have
    /// been writable — and then written — after the note was taken.
    revoke_gen: AtomicU64,
    map: RwLock<WriterMap>,
}

impl Stripe {
    fn new() -> Self {
        Self {
            marked: AtomicU64::new(0),
            mark_gen: AtomicU64::new(0),
            revoke_gen: AtomicU64::new(0),
            map: RwLock::new(WriterMap::new()),
        }
    }
}

/// The writer-set bitmap, striped by address region so `note_zeroed` and
/// `maybe_written` on disjoint packets never contend. Each stripe has its
/// own `RwLock<WriterMap>` plus a lock-free marked-granule counter; the
/// counter at zero proves the stripe clean, so the common all-clean probe
/// touches no lock. Stripe boundaries are page-aligned at construction —
/// a 4 KiB bitmap page never spans two stripes, so each granule has
/// exactly one home stripe.
pub struct StripedWriterMap {
    /// Interior boundaries (sorted, deduped, page-aligned). Stripe `i`
    /// covers `[boundaries[i-1], boundaries[i])`, open at both ends.
    boundaries: Vec<Word>,
    stripes: Vec<Stripe>,
}

impl Default for StripedWriterMap {
    fn default() -> Self {
        Self::new()
    }
}

impl StripedWriterMap {
    /// Single-stripe map (degenerates to the global-lock behavior).
    pub fn new() -> Self {
        Self::with_boundaries(&[])
    }

    /// Stripes at the given boundaries, rounded down to bitmap-page
    /// alignment so no page spans a stripe.
    pub fn with_boundaries(bs: &[Word]) -> Self {
        let mut boundaries: Vec<Word> = bs.iter().map(|b| b & !(PAGE_SIZE - 1)).collect();
        boundaries.sort_unstable();
        boundaries.dedup();
        boundaries.retain(|&b| b != 0);
        let stripes = (0..=boundaries.len()).map(|_| Stripe::new()).collect();
        Self {
            boundaries,
            stripes,
        }
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    fn stripe_of(&self, addr: Word) -> usize {
        self.boundaries.partition_point(|&b| b <= addr)
    }

    /// Exclusive upper bound of stripe `i` (`Word::MAX` for the last).
    fn stripe_end(&self, i: usize) -> Word {
        self.boundaries.get(i).copied().unwrap_or(Word::MAX)
    }

    /// Calls `f(stripe, seg_addr, seg_len)` for each stripe segment of
    /// `[addr, addr+len)`, end saturated at `Word::MAX`.
    fn for_stripe_segments(&self, addr: Word, len: u64, mut f: impl FnMut(usize, Word, u64)) {
        let len = len.min(Word::MAX - addr);
        if len == 0 {
            return;
        }
        let end = addr + len;
        let mut cur = addr;
        while cur < end {
            let s = self.stripe_of(cur);
            let seg_end = self.stripe_end(s).min(end);
            f(s, cur, seg_end - cur);
            cur = seg_end;
        }
    }

    /// Marks `[addr, addr+len)` as possibly module-written. Always bumps
    /// the touched stripes' mark generation (even when every bit was
    /// already set) so a deferred zero-note can never clear a granule
    /// that a racing explicit mark meant to keep.
    pub fn mark(&self, addr: Word, len: u64) {
        self.for_stripe_segments(addr, len, |s, a, l| {
            let stripe = &self.stripes[s];
            let mut map = stripe.map.write().expect("writer map stripe");
            let newly_set = map.mark(a, l);
            stripe.marked.fetch_add(newly_set, Ordering::AcqRel);
            stripe.mark_gen.fetch_add(1, Ordering::AcqRel);
        });
    }

    /// True if some module may have written the granule containing
    /// `addr`. A clean stripe (marked-counter zero) answers lock-free.
    pub fn maybe_written(&self, addr: Word) -> bool {
        let stripe = &self.stripes[self.stripe_of(addr)];
        if stripe.marked.load(Ordering::Acquire) == 0 {
            return false;
        }
        stripe
            .map
            .read()
            .expect("writer map stripe")
            .maybe_written(addr)
    }

    /// True if any stripe overlapping `[addr, addr+len)` has a marked
    /// granule anywhere. Lock-free: the `note_zeroed` all-clean pre-check.
    pub fn maybe_marked_over(&self, addr: Word, len: u64) -> bool {
        let mut any = false;
        self.for_stripe_segments(addr, len, |s, _, _| {
            any |= self.stripes[s].marked.load(Ordering::Acquire) != 0;
        });
        any
    }

    /// Immediate `note_zeroed`: clears granules fully inside the range for
    /// which `still_writable` is false. Clean stripes are skipped without
    /// locking. Returns granules cleared.
    pub fn clear_zeroed(
        &self,
        addr: Word,
        len: u64,
        mut still_writable: impl FnMut(Word) -> bool,
    ) -> u64 {
        let mut total = 0;
        self.for_stripe_segments(addr, len, |s, a, l| {
            let stripe = &self.stripes[s];
            if stripe.marked.load(Ordering::Acquire) == 0 {
                return;
            }
            let mut map = stripe.map.write().expect("writer map stripe");
            let cleared = map.clear_zeroed(a, l, &mut still_writable);
            stripe.marked.fetch_sub(cleared, Ordering::AcqRel);
            total += cleared;
        });
        total
    }

    /// Records (lock-free) that write coverage overlapping the range is
    /// about to be removed. Must be called *before* the index splice so a
    /// concurrent drain that observes the post-splice index also observes
    /// this bump (release/acquire through the shard lock).
    pub fn note_revoked(&self, addr: Word, len: u64) {
        self.for_stripe_segments(addr, len, |s, _, _| {
            self.stripes[s].revoke_gen.fetch_add(1, Ordering::AcqRel);
        });
    }

    /// Samples the generation token for deferring a zero-note over
    /// `[addr, addr+len)`. `None` if the range spans stripes (rare; the
    /// caller falls back to the immediate path).
    pub fn defer_token(&self, addr: Word, len: u64) -> Option<ZeroNoteToken> {
        let len = len.min(Word::MAX - addr);
        if len == 0 {
            return None;
        }
        let s = self.stripe_of(addr);
        if addr + (len - 1) >= self.stripe_end(s) {
            return None;
        }
        let stripe = &self.stripes[s];
        Some(ZeroNoteToken {
            stripe: s,
            mark_gen: stripe.mark_gen.load(Ordering::Acquire),
            revoke_gen: stripe.revoke_gen.load(Ordering::Acquire),
        })
    }

    /// Applies a deferred zero-note, or drops it as stale. The predicate
    /// is evaluated *before* the generation check: its shard-lock
    /// acquisitions give the happens-before edge that makes a racing
    /// revocation's `note_revoked` bump visible to the loads below, so a
    /// clear only commits when the stripe provably saw no mark and no
    /// coverage removal since the token was taken — exactly the state in
    /// which an immediate `note_zeroed` would have made the same clears.
    /// Returns `Some(cleared)` if applied, `None` if stale.
    pub fn try_drain_note(
        &self,
        addr: Word,
        len: u64,
        token: ZeroNoteToken,
        mut still_writable: impl FnMut(Word) -> bool,
    ) -> Option<u64> {
        let stripe = &self.stripes[token.stripe];
        let mut map = stripe.map.write().expect("writer map stripe");
        // Decide which granules would clear (predicate first — see above).
        let first = addr.div_ceil(1 << GRANULE_SHIFT);
        let last = addr.saturating_add(len) >> GRANULE_SHIFT; // exclusive
        let mut clearable: Vec<Word> = Vec::new();
        let mut g = first;
        while g < last {
            let base = g << GRANULE_SHIFT;
            if !still_writable(base) {
                clearable.push(base);
            }
            g += 1;
        }
        if stripe.mark_gen.load(Ordering::Acquire) != token.mark_gen
            || stripe.revoke_gen.load(Ordering::Acquire) != token.revoke_gen
        {
            return None;
        }
        let cleared = map.clear_zeroed(addr, len, |base| clearable.binary_search(&base).is_err());
        stripe.marked.fetch_sub(cleared, Ordering::AcqRel);
        Some(cleared)
    }

    /// Pages with any marked granule, summed over stripes (diagnostics).
    pub fn dirty_pages(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.map.read().expect("writer map stripe").dirty_pages())
            .sum()
    }

    /// Total marked granules across stripes, read lock-free from the
    /// per-stripe census (gauge).
    pub fn marked_granules(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.marked.load(Ordering::Acquire))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmarked_is_clean() {
        let m = WriterMap::new();
        assert!(!m.maybe_written(0x1234));
    }

    #[test]
    fn mark_covers_whole_range() {
        let mut m = WriterMap::new();
        m.mark(0x1000, 256);
        assert!(m.maybe_written(0x1000));
        assert!(m.maybe_written(0x10ff));
        // Same granule as 0x10ff (64-byte granularity): conservative hit.
        assert!(m.maybe_written(0x1100 - 1));
        assert!(!m.maybe_written(0x1140));
    }

    #[test]
    fn granularity_is_64_bytes() {
        let mut m = WriterMap::new();
        m.mark(0x2000, 1);
        assert!(m.maybe_written(0x2000));
        assert!(m.maybe_written(0x203f), "same granule");
        assert!(!m.maybe_written(0x2040), "next granule untouched");
    }

    #[test]
    fn mark_spans_pages() {
        let mut m = WriterMap::new();
        m.mark(0x1fc0, 0x80); // crosses the 0x2000 page boundary
        assert!(m.maybe_written(0x1fc0));
        assert!(m.maybe_written(0x2000));
        assert_eq!(m.dirty_pages(), 2);
    }

    #[test]
    fn clear_zeroed_respects_partial_granules() {
        let mut m = WriterMap::new();
        m.mark(0x3000, 128);
        // Zero only [0x3010, 0x3090): granule 0x3000 is partially zeroed
        // and must stay marked; granule 0x3040 is fully inside and clears.
        m.clear_zeroed(0x3010, 0x80, |_| false);
        assert!(m.maybe_written(0x3000));
        assert!(!m.maybe_written(0x3040));
    }

    #[test]
    fn near_max_marks_saturate() {
        let mut m = WriterMap::new();
        // Nominal end MAX+8 saturates to [MAX-8, MAX); must not overflow.
        m.mark(u64::MAX - 8, 16);
        assert!(m.maybe_written(u64::MAX - 8));
        assert!(m.maybe_written(u64::MAX - 1));
        // A mark starting at MAX covers nothing.
        let mut m2 = WriterMap::new();
        m2.mark(u64::MAX, 8);
        assert_eq!(m2.dirty_pages(), 0);
        // Saturating clear_zeroed must not overflow. The top granule
        // reaches byte MAX, which no saturated (exclusive-end) range can
        // fully contain — so its bit conservatively stays set.
        m.clear_zeroed(u64::MAX - 0x1000, u64::MAX, |_| false);
        assert!(m.maybe_written(u64::MAX - 8));
        assert!(!m.maybe_written(u64::MAX - 0x80));
    }

    #[test]
    fn clear_zeroed_keeps_still_writable_granules() {
        let mut m = WriterMap::new();
        m.mark(0x4000, 64);
        m.clear_zeroed(0x4000, 64, |_| true);
        assert!(
            m.maybe_written(0x4000),
            "a principal still holds WRITE, so the bit must stay"
        );
        m.clear_zeroed(0x4000, 64, |_| false);
        assert!(!m.maybe_written(0x4000));
    }

    #[test]
    fn mark_and_clear_report_granule_deltas() {
        let mut m = WriterMap::new();
        assert_eq!(m.mark(0x1000, 128), 2);
        assert_eq!(m.mark(0x1000, 128), 0, "re-mark sets nothing new");
        assert_eq!(m.clear_zeroed(0x1000, 128, |_| false), 2);
        assert_eq!(m.clear_zeroed(0x1000, 128, |_| false), 0);
    }

    #[test]
    fn striped_map_agrees_with_global_across_boundaries() {
        let striped = StripedWriterMap::with_boundaries(&[0x3000, 0x8000]);
        let mut global = WriterMap::new();
        assert_eq!(striped.stripe_count(), 3);
        // A mark spanning both boundaries lands in three stripes.
        striped.mark(0x2f00, 0x6000);
        global.mark(0x2f00, 0x6000);
        for addr in [0x2f00, 0x3000, 0x7fff, 0x8000, 0x8e00, 0x9000] {
            assert_eq!(
                striped.maybe_written(addr),
                global.maybe_written(addr),
                "at {addr:#x}"
            );
        }
        assert_eq!(striped.marked_granules(), global.marked_granules());
        let s = striped.clear_zeroed(0x2f00, 0x6000, |_| false);
        let g = global.clear_zeroed(0x2f00, 0x6000, |_| false);
        assert_eq!(s, g);
        assert_eq!(striped.marked_granules(), 0);
        assert!(!striped.maybe_marked_over(0, u64::MAX));
    }

    #[test]
    fn clean_stripe_precheck_fires_without_bits() {
        let striped = StripedWriterMap::with_boundaries(&[0x10_0000]);
        assert!(!striped.maybe_marked_over(0x500, 0x100));
        striped.mark(0x20_0000, 64);
        // Marks above the boundary leave the low stripe provably clean.
        assert!(!striped.maybe_marked_over(0x500, 0x100));
        assert!(striped.maybe_marked_over(0x20_0000, 8));
        assert!(striped.maybe_marked_over(0x500, u64::MAX), "spans both");
    }

    #[test]
    fn deferred_note_applies_when_generations_hold() {
        let striped = StripedWriterMap::with_boundaries(&[0x10_0000]);
        striped.mark(0x4000, 128);
        let token = striped.defer_token(0x4000, 128).expect("single stripe");
        assert_eq!(
            striped.try_drain_note(0x4000, 128, token, |_| false),
            Some(2)
        );
        assert!(!striped.maybe_written(0x4000));
    }

    #[test]
    fn deferred_note_goes_stale_on_mark_or_revoke() {
        let striped = StripedWriterMap::with_boundaries(&[0x10_0000]);
        striped.mark(0x4000, 64);
        let token = striped.defer_token(0x4000, 64).expect("single stripe");
        // A later mark anywhere in the stripe invalidates the note ...
        striped.mark(0x9000, 64);
        assert_eq!(striped.try_drain_note(0x4000, 64, token, |_| false), None);
        assert!(striped.maybe_written(0x4000), "stale note cleared nothing");
        // ... and so does a coverage revocation.
        let token = striped.defer_token(0x4000, 64).expect("single stripe");
        striped.note_revoked(0x4000, 64);
        assert_eq!(striped.try_drain_note(0x4000, 64, token, |_| false), None);
        // A fresh token with quiet generations drains.
        let token = striped.defer_token(0x4000, 64).expect("single stripe");
        assert_eq!(
            striped.try_drain_note(0x4000, 64, token, |_| false),
            Some(1)
        );
    }

    #[test]
    fn defer_token_rejects_multi_stripe_ranges() {
        let striped = StripedWriterMap::with_boundaries(&[0x10_0000]);
        assert!(striped.defer_token(0xf_ff00, 0x200).is_none());
        assert!(striped.defer_token(0xf_ff00, 0x100).is_some());
        assert!(striped.defer_token(0x4000, 0).is_none(), "empty range");
    }
}
