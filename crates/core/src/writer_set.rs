//! Writer-set tracking (§4.1, §5) — the indirect-call fast path.
//!
//! Before the core kernel invokes a function pointer, LXFI must know
//! whether any module principal could have written the pointer slot since
//! it was last zeroed. The common case is "no" (the slot was only ever
//! written by the kernel), and must be cheap.
//!
//! The structure mirrors the paper's: a page-table-like map whose leaves
//! are bitmaps, one bit per 64-byte granule, meaning "some principal has
//! been *granted WRITE* over this granule since it was last zeroed". A
//! clear bit proves the writer set is empty (no false negatives); a set
//! bit sends the check down the slow path, which consults the reverse
//! writer index ([`crate::writer_index`]) for who actually holds WRITE
//! coverage — set bits for granules nobody can write anymore are benign
//! false positives. (The paper's slow path walked the global principal
//! list instead; that traversal survives as the benchmarked
//! `LinearWriterIndex` baseline.)

use std::collections::HashMap;

use lxfi_machine::Word;

const GRANULE_SHIFT: u32 = 6; // 64-byte granules
const PAGE_SHIFT: u32 = 12;
const GRANULES_PER_PAGE: u64 = 1 << (PAGE_SHIFT - GRANULE_SHIFT); // 64

/// The "maybe written by a module" bitmap.
#[derive(Debug, Default)]
pub struct WriterMap {
    pages: HashMap<u64, u64>,
}

impl WriterMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    fn split(addr: Word) -> (u64, u64) {
        let page = addr >> PAGE_SHIFT;
        let granule = (addr >> GRANULE_SHIFT) & (GRANULES_PER_PAGE - 1);
        (page, granule)
    }

    /// Marks `[addr, addr+len)` as possibly module-written (called on
    /// every WRITE-capability grant). The end saturates at `Word::MAX`
    /// (exclusive), matching the capability tables' overflow discipline;
    /// a mark starting at `Word::MAX` covers nothing.
    pub fn mark(&mut self, addr: Word, len: u64) {
        let len = len.min(Word::MAX - addr);
        if len == 0 {
            return;
        }
        let mut g = addr >> GRANULE_SHIFT;
        let last = (addr + (len - 1)) >> GRANULE_SHIFT;
        while g <= last {
            let page = g >> (PAGE_SHIFT - GRANULE_SHIFT);
            let bit = g & (GRANULES_PER_PAGE - 1);
            *self.pages.entry(page).or_insert(0) |= 1u64 << bit;
            g += 1;
        }
    }

    /// True if some module may have written the granule containing `addr`
    /// since it was last cleared.
    pub fn maybe_written(&self, addr: Word) -> bool {
        let (page, granule) = Self::split(addr);
        self.pages
            .get(&page)
            .is_some_and(|bm| bm & (1u64 << granule) != 0)
    }

    /// Clears granules fully contained in `[addr, addr+len)` for which
    /// `still_writable` is false. Called when memory is zeroed; the
    /// predicate keeps bits set for granules some principal can still
    /// write (otherwise clearing would introduce a false negative).
    pub fn clear_zeroed(
        &mut self,
        addr: Word,
        len: u64,
        mut still_writable: impl FnMut(Word) -> bool,
    ) {
        if len == 0 {
            return;
        }
        // Only granules *fully* inside the zeroed range may be cleared.
        // The zeroed end saturates like every other range end.
        let first = addr.div_ceil(1 << GRANULE_SHIFT);
        let last = addr.saturating_add(len) >> GRANULE_SHIFT; // exclusive
        let mut g = first;
        while g < last {
            let base = g << GRANULE_SHIFT;
            if !still_writable(base) {
                let page = g >> (PAGE_SHIFT - GRANULE_SHIFT);
                let bit = g & (GRANULES_PER_PAGE - 1);
                if let Some(bm) = self.pages.get_mut(&page) {
                    *bm &= !(1u64 << bit);
                    if *bm == 0 {
                        self.pages.remove(&page);
                    }
                }
            }
            g += 1;
        }
    }

    /// Number of pages with any marked granule (diagnostics).
    pub fn dirty_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmarked_is_clean() {
        let m = WriterMap::new();
        assert!(!m.maybe_written(0x1234));
    }

    #[test]
    fn mark_covers_whole_range() {
        let mut m = WriterMap::new();
        m.mark(0x1000, 256);
        assert!(m.maybe_written(0x1000));
        assert!(m.maybe_written(0x10ff));
        // Same granule as 0x10ff (64-byte granularity): conservative hit.
        assert!(m.maybe_written(0x1100 - 1));
        assert!(!m.maybe_written(0x1140));
    }

    #[test]
    fn granularity_is_64_bytes() {
        let mut m = WriterMap::new();
        m.mark(0x2000, 1);
        assert!(m.maybe_written(0x2000));
        assert!(m.maybe_written(0x203f), "same granule");
        assert!(!m.maybe_written(0x2040), "next granule untouched");
    }

    #[test]
    fn mark_spans_pages() {
        let mut m = WriterMap::new();
        m.mark(0x1fc0, 0x80); // crosses the 0x2000 page boundary
        assert!(m.maybe_written(0x1fc0));
        assert!(m.maybe_written(0x2000));
        assert_eq!(m.dirty_pages(), 2);
    }

    #[test]
    fn clear_zeroed_respects_partial_granules() {
        let mut m = WriterMap::new();
        m.mark(0x3000, 128);
        // Zero only [0x3010, 0x3090): granule 0x3000 is partially zeroed
        // and must stay marked; granule 0x3040 is fully inside and clears.
        m.clear_zeroed(0x3010, 0x80, |_| false);
        assert!(m.maybe_written(0x3000));
        assert!(!m.maybe_written(0x3040));
    }

    #[test]
    fn near_max_marks_saturate() {
        let mut m = WriterMap::new();
        // Nominal end MAX+8 saturates to [MAX-8, MAX); must not overflow.
        m.mark(u64::MAX - 8, 16);
        assert!(m.maybe_written(u64::MAX - 8));
        assert!(m.maybe_written(u64::MAX - 1));
        // A mark starting at MAX covers nothing.
        let mut m2 = WriterMap::new();
        m2.mark(u64::MAX, 8);
        assert_eq!(m2.dirty_pages(), 0);
        // Saturating clear_zeroed must not overflow. The top granule
        // reaches byte MAX, which no saturated (exclusive-end) range can
        // fully contain — so its bit conservatively stays set.
        m.clear_zeroed(u64::MAX - 0x1000, u64::MAX, |_| false);
        assert!(m.maybe_written(u64::MAX - 8));
        assert!(!m.maybe_written(u64::MAX - 0x80));
    }

    #[test]
    fn clear_zeroed_keeps_still_writable_granules() {
        let mut m = WriterMap::new();
        m.mark(0x4000, 64);
        m.clear_zeroed(0x4000, 64, |_| true);
        assert!(
            m.maybe_written(0x4000),
            "a principal still holds WRITE, so the bit must stay"
        );
        m.clear_zeroed(0x4000, 64, |_| false);
        assert!(!m.maybe_written(0x4000));
    }
}
