//! Property tests for the annotation language: canonical-form round
//! trips and hash identity over randomly generated annotation ASTs.

use proptest::prelude::*;

use lxfi_annotations::ast::{
    Action, BinExprOp, CapList, CapTypeExpr, Expr, FnAnnotations, PrincipalExpr,
};
use lxfi_annotations::{annotation_hash, parse_fn_annotations};

fn arb_ident() -> impl Strategy<Value = String> {
    // Avoid keywords of the grammar.
    "[a-z][a-z0-9_]{0,8}".prop_filter("keyword", |s| {
        !matches!(
            s.as_str(),
            "pre"
                | "post"
                | "principal"
                | "copy"
                | "transfer"
                | "check"
                | "if"
                | "write"
                | "call"
                | "ref"
                | "return"
                | "global"
                | "shared"
        )
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    // Non-negative literals only: the parser renders `-1` as Neg(Int(1)),
    // so negative Int nodes are outside the canonical image.
    let leaf = prop_oneof![
        (0i64..1000).prop_map(Expr::Int),
        arb_ident().prop_map(Expr::Ident),
        Just(Expr::Return),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (
                prop_oneof![
                    Just(BinExprOp::Add),
                    Just(BinExprOp::Sub),
                    Just(BinExprOp::Mul),
                    Just(BinExprOp::Eq),
                    Just(BinExprOp::Ne),
                    Just(BinExprOp::Lt),
                    Just(BinExprOp::Le),
                    Just(BinExprOp::Gt),
                    Just(BinExprOp::Ge),
                    Just(BinExprOp::And),
                    Just(BinExprOp::Or),
                ],
                inner.clone(),
                inner
            )
                .prop_map(|(op, l, r)| Expr::Bin(op, Box::new(l), Box::new(r))),
        ]
    })
}

fn arb_captype() -> impl Strategy<Value = CapTypeExpr> {
    prop_oneof![
        Just(CapTypeExpr::Write),
        Just(CapTypeExpr::Call),
        arb_ident().prop_map(CapTypeExpr::Ref),
        (arb_ident(), arb_ident()).prop_map(|(a, b)| CapTypeExpr::Ref(format!("{a} {b}"))),
    ]
}

fn arb_caplist() -> impl Strategy<Value = CapList> {
    prop_oneof![
        (arb_captype(), arb_expr(), proptest::option::of(arb_expr()))
            .prop_map(|(ctype, ptr, size)| CapList::Inline { ctype, ptr, size }),
        (arb_ident(), arb_expr()).prop_map(|(func, arg)| CapList::Iter { func, arg }),
    ]
}

fn arb_action() -> impl Strategy<Value = Action> {
    let base = prop_oneof![
        arb_caplist().prop_map(Action::Copy),
        arb_caplist().prop_map(Action::Transfer),
        arb_caplist().prop_map(Action::Check),
    ];
    base.prop_recursive(2, 8, 1, |inner| {
        (arb_expr(), inner).prop_map(|(c, a)| Action::If(c, Box::new(a)))
    })
}

fn strip_checks(a: &Action) -> bool {
    match a {
        Action::Check(_) => false,
        Action::If(_, inner) => strip_checks(inner),
        _ => true,
    }
}

fn arb_annotations() -> impl Strategy<Value = FnAnnotations> {
    (
        proptest::option::of(prop_oneof![
            Just(PrincipalExpr::Global),
            Just(PrincipalExpr::Shared),
            arb_ident().prop_map(PrincipalExpr::Arg),
        ]),
        proptest::collection::vec(arb_action(), 0..4),
        proptest::collection::vec(arb_action(), 0..4),
    )
        .prop_map(|(principal, pre, post)| FnAnnotations {
            principal,
            pre,
            // `check` is pre-only; drop it from post clauses.
            post: post.into_iter().filter(strip_checks).collect(),
        })
}

proptest! {
    /// canonical → parse → canonical is a fixpoint for arbitrary ASTs.
    #[test]
    fn canonical_parse_roundtrip(ann in arb_annotations()) {
        let text = ann.canonical();
        let reparsed = parse_fn_annotations(&text)
            .unwrap_or_else(|e| panic!("reparse `{text}`: {e}"));
        prop_assert_eq!(reparsed.canonical(), text);
    }

    /// Hash equality coincides with canonical equality.
    #[test]
    fn hash_iff_canonical(a in arb_annotations(), b in arb_annotations()) {
        let ha = annotation_hash(&a);
        let hb = annotation_hash(&b);
        if a.canonical() == b.canonical() {
            prop_assert_eq!(ha, hb);
        } else {
            // FNV-1a collisions over short strings are astronomically
            // unlikely; treat one as a bug.
            prop_assert_ne!(ha, hb);
        }
    }

    /// The hash is stable under a parse round trip — the module-side and
    /// kernel-side hashes of the same source always match (§4.1).
    #[test]
    fn hash_stable_across_parse(ann in arb_annotations()) {
        let reparsed = parse_fn_annotations(&ann.canonical()).unwrap();
        prop_assert_eq!(annotation_hash(&ann), annotation_hash(&reparsed));
    }
}
