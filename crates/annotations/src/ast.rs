//! AST of the annotation language, with a canonical printer.
//!
//! The canonical printed form defines annotation identity: two annotation
//! sets are "exactly the same" (the propagation rule of §4.2) iff their
//! canonical prints are equal, and the annotation hash (§4.1) is computed
//! over the canonical print.

use std::fmt;

/// Expression over a function's arguments and return value.
///
/// Expressions evaluate over signed 64-bit integers; kernel error-code
/// conventions (`return < 0`) work as expected.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Reference to a named function parameter, or a named kernel constant
    /// (e.g. `NETDEV_BUSY`) resolved at evaluation time.
    Ident(String),
    /// The function's return value; only meaningful in `post` actions.
    Return,
    /// Unary negation.
    Neg(Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinExprOp, Box<Expr>, Box<Expr>),
}

/// Binary operators available in annotation expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinExprOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinExprOp {
    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinExprOp::Add => "+",
            BinExprOp::Sub => "-",
            BinExprOp::Mul => "*",
            BinExprOp::Div => "/",
            BinExprOp::Eq => "==",
            BinExprOp::Ne => "!=",
            BinExprOp::Lt => "<",
            BinExprOp::Le => "<=",
            BinExprOp::Gt => ">",
            BinExprOp::Ge => ">=",
            BinExprOp::And => "&&",
            BinExprOp::Or => "||",
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Ident(s) => write!(f, "{s}"),
            Expr::Return => write!(f, "return"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Not(e) => write!(f, "!({e})"),
            Expr::Bin(op, l, r) => write!(f, "({l} {} {r})", op.symbol()),
        }
    }
}

/// Capability type expression in a caplist.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CapTypeExpr {
    /// `write` — WRITE capability over a byte range.
    Write,
    /// `call` — CALL capability for a code address.
    Call,
    /// `ref(type-name)` — REF capability of the named type (§3.2); the
    /// type need not be a C type (Guideline 3 uses synthetic types).
    Ref(String),
}

impl fmt::Display for CapTypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapTypeExpr::Write => write!(f, "write"),
            CapTypeExpr::Call => write!(f, "call"),
            CapTypeExpr::Ref(t) => write!(f, "ref({t})"),
        }
    }
}

/// The capabilities an action applies to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CapList {
    /// `(c, ptr [, size])` — one capability given inline. A missing size
    /// defaults to `sizeof(*ptr)`, resolved against the annotated
    /// parameter's declared type at enforcement time.
    Inline {
        /// Capability type.
        ctype: CapTypeExpr,
        /// Address (or, for `call`, target) expression.
        ptr: Expr,
        /// Optional size expression.
        size: Option<Expr>,
    },
    /// `iterator-func(c-expr)` — a programmer-supplied capability iterator
    /// (§3.3), e.g. `skb_caps(skb)`, which walks a data structure and
    /// emits each contained capability.
    Iter {
        /// Registered iterator name.
        func: String,
        /// Argument expression.
        arg: Expr,
    },
}

impl fmt::Display for CapList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapList::Inline {
                ctype,
                ptr,
                size: None,
            } => write!(f, "{ctype}, {ptr}"),
            CapList::Inline {
                ctype,
                ptr,
                size: Some(s),
            } => write!(f, "{ctype}, {ptr}, {s}"),
            CapList::Iter { func, arg } => write!(f, "{func}({arg})"),
        }
    }
}

/// A capability action performed before or after a call (§3.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Grant a copy of the capability across the boundary (caller→callee
    /// for `pre`, callee→caller for `post`); the grantor must own it.
    Copy(CapList),
    /// Move the capability across the boundary and revoke it from **all**
    /// principals, so no stale copies survive (§3.3).
    Transfer(CapList),
    /// Verify the caller owns the capability; always a `pre` action.
    Check(CapList),
    /// Conditionally perform an action, e.g.
    /// `if (return < 0) transfer(...)`.
    If(Expr, Box<Action>),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Copy(c) => write!(f, "copy({c})"),
            Action::Transfer(c) => write!(f, "transfer({c})"),
            Action::Check(c) => write!(f, "check({c})"),
            Action::If(e, a) => write!(f, "if ({e}) {a}"),
        }
    }
}

/// The callee principal named by a `principal(...)` annotation (§3.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PrincipalExpr {
    /// A pointer-valued parameter naming the instance principal.
    Arg(String),
    /// The module's global principal (union of all instance privileges).
    Global,
    /// The module's shared principal (privileges common to all instances).
    Shared,
}

impl fmt::Display for PrincipalExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrincipalExpr::Arg(a) => write!(f, "{a}"),
            PrincipalExpr::Global => write!(f, "global"),
            PrincipalExpr::Shared => write!(f, "shared"),
        }
    }
}

/// One annotation clause as parsed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Annotation {
    /// `pre(action)` — run before the call.
    Pre(Action),
    /// `post(action)` — run after the call returns.
    Post(Action),
    /// `principal(p)` — execute the callee as this principal.
    Principal(PrincipalExpr),
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Annotation::Pre(a) => write!(f, "pre({a})"),
            Annotation::Post(a) => write!(f, "post({a})"),
            Annotation::Principal(p) => write!(f, "principal({p})"),
        }
    }
}

/// The complete annotation set attached to one function or one
/// function-pointer type.
///
/// In the absence of a `principal` annotation, the module's *shared*
/// principal is used (Figure 3's last row).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FnAnnotations {
    /// Callee principal, if any.
    pub principal: Option<PrincipalExpr>,
    /// Actions run before the call, in source order.
    pub pre: Vec<Action>,
    /// Actions run after the call, in source order.
    pub post: Vec<Action>,
}

impl FnAnnotations {
    /// An empty annotation set (the safe default: a function with no
    /// annotations cannot be called by a module at all — that is enforced
    /// by the kernel's interface registry, not here).
    pub fn empty() -> Self {
        Self::default()
    }

    /// True if no clauses are present.
    pub fn is_empty(&self) -> bool {
        self.principal.is_none() && self.pre.is_empty() && self.post.is_empty()
    }

    /// Canonical textual form: `principal` first, then `pre` clauses in
    /// source order, then `post` clauses. Identity and hashing are defined
    /// over this string.
    pub fn canonical(&self) -> String {
        let mut parts = Vec::new();
        if let Some(p) = &self.principal {
            parts.push(format!("principal({p})"));
        }
        for a in &self.pre {
            parts.push(format!("pre({a})"));
        }
        for a in &self.post {
            parts.push(format!("post({a})"));
        }
        parts.join(" ")
    }

    /// Iterates over all caplists mentioned anywhere in the annotation set
    /// (used by the annotation census for Figure 9).
    pub fn caplists(&self) -> Vec<&CapList> {
        fn collect<'a>(a: &'a Action, out: &mut Vec<&'a CapList>) {
            match a {
                Action::Copy(c) | Action::Transfer(c) | Action::Check(c) => out.push(c),
                Action::If(_, inner) => collect(inner, out),
            }
        }
        let mut out = Vec::new();
        for a in self.pre.iter().chain(self.post.iter()) {
            collect(a, &mut out);
        }
        out
    }

    /// Names of capability iterators referenced by this annotation set.
    pub fn iterator_names(&self) -> Vec<&str> {
        self.caplists()
            .into_iter()
            .filter_map(|c| match c {
                CapList::Iter { func, .. } => Some(func.as_str()),
                CapList::Inline { .. } => None,
            })
            .collect()
    }
}

impl fmt::Display for FnAnnotations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_ordering_is_stable() {
        let ann = FnAnnotations {
            principal: Some(PrincipalExpr::Arg("dev".into())),
            pre: vec![Action::Check(CapList::Inline {
                ctype: CapTypeExpr::Ref("struct pci_dev".into()),
                ptr: Expr::Ident("pcidev".into()),
                size: None,
            })],
            post: vec![Action::If(
                Expr::Bin(
                    BinExprOp::Lt,
                    Box::new(Expr::Return),
                    Box::new(Expr::Int(0)),
                ),
                Box::new(Action::Transfer(CapList::Iter {
                    func: "skb_caps".into(),
                    arg: Expr::Ident("skb".into()),
                })),
            )],
        };
        assert_eq!(
            ann.canonical(),
            "principal(dev) pre(check(ref(struct pci_dev), pcidev)) \
             post(if ((return < 0)) transfer(skb_caps(skb)))"
        );
    }

    #[test]
    fn caplist_collection_descends_into_if() {
        let ann = FnAnnotations {
            principal: None,
            pre: vec![],
            post: vec![Action::If(
                Expr::Int(1),
                Box::new(Action::Transfer(CapList::Iter {
                    func: "skb_caps".into(),
                    arg: Expr::Ident("skb".into()),
                })),
            )],
        };
        assert_eq!(ann.caplists().len(), 1);
        assert_eq!(ann.iterator_names(), vec!["skb_caps"]);
    }

    #[test]
    fn empty_annotations() {
        assert!(FnAnnotations::empty().is_empty());
        assert_eq!(FnAnnotations::empty().canonical(), "");
    }
}
