//! Stable annotation hashing.
//!
//! `lxfi_check_indcall(pptr, ahash)` (§4.1) compares the hash of the
//! annotations on the *invoked function* against the hash of the
//! annotations on the *function-pointer type* of the call site. A module
//! must not be able to change a function's effective annotations by
//! storing it in a differently-annotated pointer slot, so hash equality
//! must coincide with annotation-set equality (up to canonical form).
//!
//! The hash is FNV-1a over the canonical print — deliberately independent
//! of Rust's `Hash` so it is stable across compiler versions and runs.

use crate::ast::FnAnnotations;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes raw bytes with FNV-1a.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Computes the stable annotation hash (`ahash`) of an annotation set.
pub fn annotation_hash(ann: &FnAnnotations) -> u64 {
    fnv1a(ann.canonical().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_fn_annotations;

    #[test]
    fn equal_annotations_hash_equal() {
        let a = parse_fn_annotations("pre(check(write, p, 8))").unwrap();
        let b = parse_fn_annotations("pre( check( write , p , 8 ) )").unwrap();
        assert_eq!(annotation_hash(&a), annotation_hash(&b));
    }

    #[test]
    fn different_annotations_hash_differently() {
        let a = parse_fn_annotations("pre(check(write, p, 8))").unwrap();
        let b = parse_fn_annotations("pre(check(write, p, 16))").unwrap();
        let c = parse_fn_annotations("pre(copy(write, p, 8))").unwrap();
        assert_ne!(annotation_hash(&a), annotation_hash(&b));
        assert_ne!(annotation_hash(&a), annotation_hash(&c));
    }

    #[test]
    fn hash_is_stable_across_runs() {
        // Pinned value: changing the canonical form or hash function is a
        // breaking change for recorded experiments.
        let a = parse_fn_annotations("pre(check(write, p, 8))").unwrap();
        assert_eq!(annotation_hash(&a), fnv1a(b"pre(check(write, p, 8))"));
    }

    #[test]
    fn empty_annotation_hash_is_distinct() {
        let empty = crate::ast::FnAnnotations::empty();
        let some = parse_fn_annotations("pre(check(call, f))").unwrap();
        assert_ne!(annotation_hash(&empty), annotation_hash(&some));
    }
}
