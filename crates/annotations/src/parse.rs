//! Recursive-descent parser for the annotation surface syntax.

use crate::ast::{
    Action, Annotation, BinExprOp, CapList, CapTypeExpr, Expr, FnAnnotations, PrincipalExpr,
};

/// Error from parsing annotation text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub pos: usize,
    /// Explanation.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "annotation parse error at byte {}: {}",
            self.pos, self.msg
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    LParen,
    RParen,
    Comma,
    Op(&'static str),
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    toks: Vec<(usize, Tok)>,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut l = Lexer {
        src,
        pos: 0,
        toks: Vec::new(),
    };
    let b = src.as_bytes();
    while l.pos < b.len() {
        let c = b[l.pos] as char;
        let start = l.pos;
        match c {
            ' ' | '\t' | '\n' | '\r' => l.pos += 1,
            '(' => {
                l.toks.push((start, Tok::LParen));
                l.pos += 1;
            }
            ')' => {
                l.toks.push((start, Tok::RParen));
                l.pos += 1;
            }
            ',' => {
                l.toks.push((start, Tok::Comma));
                l.pos += 1;
            }
            '0'..='9' => {
                let mut end = l.pos;
                while end < b.len() && (b[end] as char).is_ascii_digit() {
                    end += 1;
                }
                let v: i64 = l.src[l.pos..end].parse().map_err(|_| ParseError {
                    pos: start,
                    msg: "integer overflow".into(),
                })?;
                l.toks.push((start, Tok::Int(v)));
                l.pos = end;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut end = l.pos;
                while end < b.len() {
                    let ch = b[end] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                l.toks
                    .push((start, Tok::Ident(l.src[l.pos..end].to_string())));
                l.pos = end;
            }
            _ => {
                // Multi-char operators first.
                let rest = &l.src[l.pos..];
                let two = if rest.len() >= 2 { &rest[..2] } else { "" };
                let op = match two {
                    "==" => Some("=="),
                    "!=" => Some("!="),
                    "<=" => Some("<="),
                    ">=" => Some(">="),
                    "&&" => Some("&&"),
                    "||" => Some("||"),
                    _ => None,
                };
                if let Some(op) = op {
                    l.toks.push((start, Tok::Op(op)));
                    l.pos += 2;
                } else {
                    let op = match c {
                        '+' => "+",
                        '-' => "-",
                        '*' => "*",
                        '/' => "/",
                        '<' => "<",
                        '>' => ">",
                        '!' => "!",
                        _ => {
                            return Err(ParseError {
                                pos: start,
                                msg: format!("unexpected character `{c}`"),
                            })
                        }
                    };
                    l.toks.push((start, Tok::Op(op)));
                    l.pos += 1;
                }
            }
        }
    }
    Ok(l.toks)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(_, t)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.i + 1).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks.get(self.i).map(|(p, _)| *p).unwrap_or(usize::MAX)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(_, t)| t.clone());
        self.i += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            pos: self.pos(),
            msg: msg.into(),
        })
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            other => Err(ParseError {
                pos: self.pos(),
                msg: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(ParseError {
                pos: self.pos(),
                msg: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    // ------------------------------------------------------- expressions

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Tok::Op("||")) {
            self.next();
            let rhs = self.parse_and()?;
            lhs = Expr::Bin(BinExprOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_cmp()?;
        while self.peek() == Some(&Tok::Op("&&")) {
            self.next();
            let rhs = self.parse_cmp()?;
            lhs = Expr::Bin(BinExprOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Tok::Op("==")) => Some(BinExprOp::Eq),
            Some(Tok::Op("!=")) => Some(BinExprOp::Ne),
            Some(Tok::Op("<")) => Some(BinExprOp::Lt),
            Some(Tok::Op("<=")) => Some(BinExprOp::Le),
            Some(Tok::Op(">")) => Some(BinExprOp::Gt),
            Some(Tok::Op(">=")) => Some(BinExprOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let rhs = self.parse_add()?;
            Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op("+")) => BinExprOp::Add,
                Some(Tok::Op("-")) => BinExprOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.parse_mul()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op("*")) => BinExprOp::Mul,
                Some(Tok::Op("/")) => BinExprOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.parse_unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Tok::Op("-")) => {
                self.next();
                Ok(Expr::Neg(Box::new(self.parse_unary()?)))
            }
            Some(Tok::Op("!")) => {
                self.next();
                Ok(Expr::Not(Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::Ident(s)) if s == "return" => Ok(Expr::Return),
            Some(Tok::Ident(s)) => Ok(Expr::Ident(s)),
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, ")")?;
                Ok(e)
            }
            other => Err(ParseError {
                pos: self.pos(),
                msg: format!("expected expression, found {other:?}"),
            }),
        }
    }

    // ----------------------------------------------------------- actions

    /// Parses a type name inside `ref( ... )`: a sequence of identifiers
    /// joined by single spaces (e.g. `struct pci_dev`).
    fn parse_type_name(&mut self) -> Result<String, ParseError> {
        let mut parts = vec![self.expect_ident()?];
        while let Some(Tok::Ident(_)) = self.peek() {
            parts.push(self.expect_ident()?);
        }
        Ok(parts.join(" "))
    }

    fn parse_caplist(&mut self) -> Result<CapList, ParseError> {
        match self.peek() {
            Some(Tok::Ident(kw)) if kw == "write" || kw == "call" => {
                let ctype = if kw == "write" {
                    CapTypeExpr::Write
                } else {
                    CapTypeExpr::Call
                };
                self.next();
                self.expect(&Tok::Comma, ",")?;
                self.parse_caplist_tail(ctype)
            }
            Some(Tok::Ident(kw)) if kw == "ref" => {
                self.next();
                self.expect(&Tok::LParen, "(")?;
                let t = self.parse_type_name()?;
                self.expect(&Tok::RParen, ")")?;
                self.expect(&Tok::Comma, ",")?;
                self.parse_caplist_tail(CapTypeExpr::Ref(t))
            }
            Some(Tok::Ident(_)) if self.peek2() == Some(&Tok::LParen) => {
                // Iterator function: `name(expr)`.
                let func = self.expect_ident()?;
                self.expect(&Tok::LParen, "(")?;
                let arg = self.parse_expr()?;
                self.expect(&Tok::RParen, ")")?;
                Ok(CapList::Iter { func, arg })
            }
            _ => self.err("expected caplist (write/call/ref/iterator)"),
        }
    }

    fn parse_caplist_tail(&mut self, ctype: CapTypeExpr) -> Result<CapList, ParseError> {
        let ptr = self.parse_expr()?;
        let size = if self.peek() == Some(&Tok::Comma) {
            self.next();
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(CapList::Inline { ctype, ptr, size })
    }

    fn parse_action(&mut self) -> Result<Action, ParseError> {
        let kw = self.expect_ident()?;
        match kw.as_str() {
            "copy" | "transfer" | "check" => {
                self.expect(&Tok::LParen, "(")?;
                let caps = self.parse_caplist()?;
                self.expect(&Tok::RParen, ")")?;
                Ok(match kw.as_str() {
                    "copy" => Action::Copy(caps),
                    "transfer" => Action::Transfer(caps),
                    _ => Action::Check(caps),
                })
            }
            "if" => {
                self.expect(&Tok::LParen, "(")?;
                let cond = self.parse_expr()?;
                self.expect(&Tok::RParen, ")")?;
                let inner = self.parse_action()?;
                Ok(Action::If(cond, Box::new(inner)))
            }
            other => self.err(format!("expected action keyword, found `{other}`")),
        }
    }

    fn parse_annotation(&mut self) -> Result<Annotation, ParseError> {
        let kw = self.expect_ident()?;
        match kw.as_str() {
            "pre" => {
                self.expect(&Tok::LParen, "(")?;
                let a = self.parse_action()?;
                self.expect(&Tok::RParen, ")")?;
                Ok(Annotation::Pre(a))
            }
            "post" => {
                self.expect(&Tok::LParen, "(")?;
                let a = self.parse_action()?;
                self.expect(&Tok::RParen, ")")?;
                Ok(Annotation::Post(a))
            }
            "principal" => {
                self.expect(&Tok::LParen, "(")?;
                let name = self.expect_ident()?;
                let p = match name.as_str() {
                    "global" => PrincipalExpr::Global,
                    "shared" => PrincipalExpr::Shared,
                    _ => PrincipalExpr::Arg(name),
                };
                self.expect(&Tok::RParen, ")")?;
                Ok(Annotation::Principal(p))
            }
            other => self.err(format!("expected pre/post/principal, found `{other}`")),
        }
    }
}

/// Parses a whitespace-separated list of annotation clauses.
pub fn parse_annotation_list(src: &str) -> Result<Vec<Annotation>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, i: 0 };
    let mut anns = Vec::new();
    while p.peek().is_some() {
        anns.push(p.parse_annotation()?);
    }
    Ok(anns)
}

/// Parses a complete annotation set for one function or function-pointer
/// type. Rejects duplicate `principal` clauses and `check` in `post`
/// position (the grammar says all checks are `pre`, §3.3).
pub fn parse_fn_annotations(src: &str) -> Result<FnAnnotations, ParseError> {
    let anns = parse_annotation_list(src)?;
    let mut out = FnAnnotations::default();
    for a in anns {
        match a {
            Annotation::Principal(p) => {
                if out.principal.is_some() {
                    return Err(ParseError {
                        pos: 0,
                        msg: "duplicate principal(...) annotation".into(),
                    });
                }
                out.principal = Some(p);
            }
            Annotation::Pre(act) => out.pre.push(act),
            Annotation::Post(act) => {
                if contains_check(&act) {
                    return Err(ParseError {
                        pos: 0,
                        msg: "check(...) actions must be pre (all checks are pre, §3.3)".into(),
                    });
                }
                out.post.push(act);
            }
        }
    }
    Ok(out)
}

fn contains_check(a: &Action) -> bool {
    match a {
        Action::Check(_) => true,
        Action::If(_, inner) => contains_check(inner),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure4_pci_probe() {
        let ann = parse_fn_annotations(
            "principal(pcidev) \
             pre(copy(ref(struct pci_dev), pcidev)) \
             post(if (return < 0) transfer(ref(struct pci_dev), pcidev))",
        )
        .unwrap();
        assert_eq!(ann.principal, Some(PrincipalExpr::Arg("pcidev".into())));
        assert_eq!(ann.pre.len(), 1);
        match &ann.pre[0] {
            Action::Copy(CapList::Inline { ctype, ptr, size }) => {
                assert_eq!(*ctype, CapTypeExpr::Ref("struct pci_dev".into()));
                assert_eq!(*ptr, Expr::Ident("pcidev".into()));
                assert!(size.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        match &ann.post[0] {
            Action::If(cond, inner) => {
                assert_eq!(
                    *cond,
                    Expr::Bin(
                        BinExprOp::Lt,
                        Box::new(Expr::Return),
                        Box::new(Expr::Int(0))
                    )
                );
                assert!(matches!(**inner, Action::Transfer(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_figure4_xmit_with_iterator() {
        let ann = parse_fn_annotations(
            "principal(dev) \
             pre(transfer(skb_caps(skb))) \
             post(if (return == -NETDEV_BUSY) transfer(skb_caps(skb)))",
        )
        .unwrap();
        assert_eq!(ann.principal, Some(PrincipalExpr::Arg("dev".into())));
        assert_eq!(ann.iterator_names(), vec!["skb_caps", "skb_caps"]);
    }

    #[test]
    fn parses_write_with_size() {
        let ann =
            parse_fn_annotations("post(if (return != 0) transfer(write, return, size))").unwrap();
        let caps = ann.caplists();
        assert!(matches!(
            caps[0],
            CapList::Inline {
                ctype: CapTypeExpr::Write,
                size: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn parses_global_and_shared_principals() {
        assert_eq!(
            parse_fn_annotations("principal(global)").unwrap().principal,
            Some(PrincipalExpr::Global)
        );
        assert_eq!(
            parse_fn_annotations("principal(shared)").unwrap().principal,
            Some(PrincipalExpr::Shared)
        );
    }

    #[test]
    fn rejects_duplicate_principal() {
        assert!(parse_fn_annotations("principal(a) principal(b)").is_err());
    }

    #[test]
    fn rejects_post_check() {
        assert!(parse_fn_annotations("post(check(write, p, 8))").is_err());
        assert!(parse_fn_annotations("post(if (return != 0) check(write, p, 8))").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_fn_annotations("pre(frobnicate(write, p))").is_err());
        assert!(parse_fn_annotations("pre(copy(write p))").is_err());
        assert!(parse_fn_annotations("pre(copy(write, p)").is_err());
        assert!(parse_fn_annotations("wibble(x)").is_err());
    }

    #[test]
    fn expression_precedence() {
        let ann =
            parse_fn_annotations("pre(if (a + b * 2 < c && c != 0) check(write, p, 8))").unwrap();
        let c = ann.canonical();
        assert!(c.contains("(((a + (b * 2)) < c) && (c != 0))"), "{c}");
    }

    #[test]
    fn parse_print_parse_fixpoint() {
        let srcs = [
            "principal(pcidev) pre(copy(ref(struct pci_dev), pcidev)) \
             post(if (return < 0) transfer(ref(struct pci_dev), pcidev))",
            "pre(transfer(skb_caps(skb)))",
            "pre(check(call, fn)) post(copy(write, buf, len))",
        ];
        for s in srcs {
            let a1 = parse_fn_annotations(s).unwrap();
            let printed = a1.canonical();
            let a2 = parse_fn_annotations(&printed).unwrap();
            assert_eq!(a1, a2, "fixpoint for {s}");
            assert_eq!(printed, a2.canonical());
        }
    }
}
