//! The LXFI annotation language (Figure 2 of the paper).
//!
//! Kernel developers describe *API integrity* contracts as lightweight
//! annotations on function prototypes and function-pointer types:
//!
//! ```text
//! annotation ::= pre(action) | post(action) | principal(p-expr)
//! action     ::= copy(caplist) | transfer(caplist) | check(caplist)
//!              | if (c-expr) action
//! caplist    ::= captype, ptr [, size] | iterator-func(c-expr)
//! captype    ::= write | call | ref(type-name)
//! ```
//!
//! Examples (from Figure 4):
//!
//! ```
//! use lxfi_annotations::parse_fn_annotations;
//!
//! let ann = parse_fn_annotations(
//!     "principal(pcidev) \
//!      pre(copy(ref(struct pci_dev), pcidev)) \
//!      post(if (return < 0) transfer(ref(struct pci_dev), pcidev))",
//! ).unwrap();
//! assert!(ann.principal.is_some());
//! assert_eq!(ann.pre.len(), 1);
//! assert_eq!(ann.post.len(), 1);
//! ```
//!
//! The crate provides:
//! - the AST ([`ast`]) with a canonical printer,
//! - a recursive-descent parser ([`parse`]),
//! - a stable 64-bit annotation hash ([`hash`]) — the `ahash` compared by
//!   `lxfi_check_indcall` to ensure a module cannot launder a function
//!   through a differently-annotated pointer type (§4.1),
//! - expression evaluation over call arguments and return values ([`eval`]).

pub mod ast;
pub mod eval;
pub mod hash;
pub mod parse;

pub use ast::{
    Action, Annotation, BinExprOp, CapList, CapTypeExpr, Expr, FnAnnotations, PrincipalExpr,
};
pub use eval::{eval_expr, EvalCtx, EvalError};
pub use hash::annotation_hash;
pub use parse::{parse_annotation_list, parse_fn_annotations, ParseError};
