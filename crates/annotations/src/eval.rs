//! Evaluation of annotation expressions at enforcement time.
//!
//! Expressions reference the annotated function's parameters by name, the
//! return value (`return`, in `post` actions only), and named kernel
//! constants (e.g. `NETDEV_BUSY`). All arithmetic is signed 64-bit with
//! wrapping semantics; comparisons yield 0 or 1.

use std::collections::HashMap;

use crate::ast::{BinExprOp, Expr};

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Identifier is neither a parameter nor a registered constant.
    UnknownIdent(String),
    /// `return` used where no return value exists (a `pre` action).
    ReturnUnavailable,
    /// Division by zero.
    DivByZero,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnknownIdent(s) => write!(f, "unknown identifier `{s}` in annotation"),
            EvalError::ReturnUnavailable => write!(f, "`return` referenced in a pre action"),
            EvalError::DivByZero => write!(f, "division by zero in annotation"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The values visible to an annotation expression at one call.
pub struct EvalCtx<'a> {
    /// Parameter names of the annotated function, in order.
    pub params: &'a [String],
    /// Argument values, parallel to `params`.
    pub args: &'a [u64],
    /// Return value, for `post` actions.
    pub ret: Option<u64>,
    /// Named kernel constants (`NETDEV_BUSY`, `EINVAL`, ...).
    pub consts: &'a HashMap<String, i64>,
}

impl<'a> EvalCtx<'a> {
    /// Resolves a parameter's value by name.
    pub fn param(&self, name: &str) -> Option<u64> {
        self.params
            .iter()
            .position(|p| p == name)
            .and_then(|i| self.args.get(i).copied())
    }
}

/// Evaluates an expression; booleans are 0/1.
pub fn eval_expr(e: &Expr, ctx: &EvalCtx<'_>) -> Result<i64, EvalError> {
    Ok(match e {
        Expr::Int(v) => *v,
        Expr::Return => ctx.ret.ok_or(EvalError::ReturnUnavailable)? as i64,
        Expr::Ident(name) => {
            if let Some(v) = ctx.param(name) {
                v as i64
            } else if let Some(v) = ctx.consts.get(name) {
                *v
            } else {
                return Err(EvalError::UnknownIdent(name.clone()));
            }
        }
        Expr::Neg(inner) => eval_expr(inner, ctx)?.wrapping_neg(),
        Expr::Not(inner) => i64::from(eval_expr(inner, ctx)? == 0),
        Expr::Bin(op, l, r) => {
            let lv = eval_expr(l, ctx)?;
            // Short-circuit logical operators.
            match op {
                BinExprOp::And => {
                    return Ok(if lv != 0 {
                        i64::from(eval_expr(r, ctx)? != 0)
                    } else {
                        0
                    })
                }
                BinExprOp::Or => {
                    return Ok(if lv != 0 {
                        1
                    } else {
                        i64::from(eval_expr(r, ctx)? != 0)
                    })
                }
                _ => {}
            }
            let rv = eval_expr(r, ctx)?;
            match op {
                BinExprOp::Add => lv.wrapping_add(rv),
                BinExprOp::Sub => lv.wrapping_sub(rv),
                BinExprOp::Mul => lv.wrapping_mul(rv),
                BinExprOp::Div => lv.checked_div(rv).ok_or(EvalError::DivByZero)?,
                BinExprOp::Eq => i64::from(lv == rv),
                BinExprOp::Ne => i64::from(lv != rv),
                BinExprOp::Lt => i64::from(lv < rv),
                BinExprOp::Le => i64::from(lv <= rv),
                BinExprOp::Gt => i64::from(lv > rv),
                BinExprOp::Ge => i64::from(lv >= rv),
                BinExprOp::And | BinExprOp::Or => unreachable!("handled above"),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_fn_annotations;

    fn ctx<'a>(
        params: &'a [String],
        args: &'a [u64],
        ret: Option<u64>,
        consts: &'a HashMap<String, i64>,
    ) -> EvalCtx<'a> {
        EvalCtx {
            params,
            args,
            ret,
            consts,
        }
    }

    fn first_pre_cond(src: &str) -> Expr {
        let ann = parse_fn_annotations(src).unwrap();
        match &ann.pre[0] {
            crate::ast::Action::If(c, _) => c.clone(),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn params_resolve_by_name() {
        let params = vec!["skb".to_string(), "len".to_string()];
        let args = vec![0xffff_8000_0000_1000, 64];
        let consts = HashMap::new();
        let c = ctx(&params, &args, None, &consts);
        let e = first_pre_cond("pre(if (len > 32) check(write, skb, len))");
        assert_eq!(eval_expr(&e, &c).unwrap(), 1);
    }

    #[test]
    fn return_in_post_only() {
        let params: Vec<String> = vec![];
        let consts = HashMap::new();
        let c = ctx(&params, &[], None, &consts);
        let e = first_pre_cond("pre(if (return < 0) check(write, p, 8))");
        // `p` never evaluated: the `return` error fires first.
        assert_eq!(eval_expr(&e, &c), Err(EvalError::ReturnUnavailable));

        let c2 = ctx(&params, &[], Some((-5i64) as u64), &consts);
        assert_eq!(eval_expr(&e, &c2).unwrap(), 1);
    }

    #[test]
    fn named_constants_with_unary_minus() {
        let params: Vec<String> = vec![];
        let mut consts = HashMap::new();
        consts.insert("NETDEV_BUSY".to_string(), 16);
        let e = first_pre_cond("pre(if (return == -NETDEV_BUSY) check(write, p, 8))");
        let c = ctx(&params, &[], Some((-16i64) as u64), &consts);
        assert_eq!(eval_expr(&e, &c).unwrap(), 1);
        let c2 = ctx(&params, &[], Some(0), &consts);
        assert_eq!(eval_expr(&e, &c2).unwrap(), 0);
    }

    #[test]
    fn unknown_ident_is_an_error() {
        let params: Vec<String> = vec![];
        let consts = HashMap::new();
        let c = ctx(&params, &[], None, &consts);
        assert_eq!(
            eval_expr(&Expr::Ident("mystery".into()), &c),
            Err(EvalError::UnknownIdent("mystery".into()))
        );
    }

    #[test]
    fn short_circuit_avoids_errors() {
        let params: Vec<String> = vec![];
        let consts = HashMap::new();
        let c = ctx(&params, &[], None, &consts);
        // `0 && return` must not evaluate `return`.
        let e = Expr::Bin(
            BinExprOp::And,
            Box::new(Expr::Int(0)),
            Box::new(Expr::Return),
        );
        assert_eq!(eval_expr(&e, &c).unwrap(), 0);
        let e = Expr::Bin(
            BinExprOp::Or,
            Box::new(Expr::Int(1)),
            Box::new(Expr::Return),
        );
        assert_eq!(eval_expr(&e, &c).unwrap(), 1);
    }

    #[test]
    fn kernel_pointer_is_negative_as_signed() {
        // Kernel addresses are in the upper half; annotations must use
        // `!= 0` (not `> 0`) for success checks. Document by test.
        let params = vec!["p".to_string()];
        let args = vec![0xffff_8000_0000_0000u64];
        let consts = HashMap::new();
        let c = ctx(&params, &args, None, &consts);
        assert!(eval_expr(&Expr::Ident("p".into()), &c).unwrap() < 0);
    }

    #[test]
    fn arithmetic_and_division() {
        let params: Vec<String> = vec![];
        let consts = HashMap::new();
        let c = ctx(&params, &[], None, &consts);
        let e = Expr::Bin(
            BinExprOp::Div,
            Box::new(Expr::Int(7)),
            Box::new(Expr::Int(2)),
        );
        assert_eq!(eval_expr(&e, &c).unwrap(), 3);
        let z = Expr::Bin(
            BinExprOp::Div,
            Box::new(Expr::Int(7)),
            Box::new(Expr::Int(0)),
        );
        assert_eq!(eval_expr(&z, &c), Err(EvalError::DivByZero));
    }
}
