//! LXFI — software fault isolation with API integrity and multi-principal
//! modules (reproduction of Mao et al., SOSP 2011).
//!
//! This facade crate re-exports the workspace: the KIR machine substrate,
//! the annotation language, the LXFI runtime, the compile-time rewriter,
//! the simulated Linux kernel, the ten annotated modules, and the CVE
//! exploit reproductions. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use lxfi_annotations as annotations;
pub use lxfi_core as core;
pub use lxfi_exploits as exploits;
pub use lxfi_kernel as kernel;
pub use lxfi_machine as machine;
pub use lxfi_modules as modules;
pub use lxfi_rewriter as rewriter;

/// Commonly used items for examples and downstream users.
pub mod prelude {
    pub use lxfi_kernel::{IsolationMode, Kernel};
}
